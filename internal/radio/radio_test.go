package radio

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

// idleProc returns a device that halts immediately.
func idleProc() Proc {
	return ProcFunc(func(Channel, Feedback) Action { return Halt() })
}

// fill pads a device population with idlers up to n.
func fill(n int, m map[int]Proc) []Device {
	devs := make([]Device, n)
	for i := range devs {
		if p, ok := m[i]; ok {
			devs[i].Proc = p
		} else {
			devs[i].Proc = idleProc()
		}
	}
	return devs
}

// txOnce transmits payload in the given slot and halts.
func txOnce(slot uint64, payload any) Proc {
	return ContProc(func(Channel) Cont { return Then(Transmit(slot, payload), nil) })
}

// rxOnce listens in the given slot, stores the feedback, and halts.
func rxOnce(slot uint64, out *Feedback) Proc {
	return ContProc(func(Channel) Cont {
		return Recv(slot, func(fb Feedback) Cont {
			*out = fb
			return nil
		})
	})
}

func TestSingleDelivery(t *testing.T) {
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		g := graph.Path(2)
		var got Feedback
		res, err := RunDevices(Config{Graph: g, Model: model}, fill(2, map[int]Proc{
			0: txOnce(1, "hello"),
			1: rxOnce(1, &got),
		}))
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got.Status != Received || got.Payload != "hello" {
			t.Errorf("%v: feedback = %+v", model, got)
		}
		if res.Slots != 1 {
			t.Errorf("%v: slots = %d", model, res.Slots)
		}
		if res.Energy[0] != 1 || res.Energy[1] != 1 {
			t.Errorf("%v: energy = %v", model, res.Energy)
		}
		if res.Transmits[0] != 1 || res.Listens[1] != 1 {
			t.Errorf("%v: transmit/listen counts wrong", model)
		}
	}
}

func TestCollisionSemantics(t *testing.T) {
	// Star: 0 is the listener center; 1 and 2 transmit simultaneously.
	cases := []struct {
		model      Model
		wantStatus Status
	}{
		{NoCD, Silence},
		{CD, Noise},
		{CDStar, Received},
		{Local, Received},
	}
	for _, c := range cases {
		g := graph.Star(3)
		var got Feedback
		_, err := RunDevices(Config{Graph: g, Model: c.model}, fill(3, map[int]Proc{
			0: rxOnce(1, &got),
			1: txOnce(1, "from1"),
			2: txOnce(1, "from2"),
		}))
		if err != nil {
			t.Fatalf("%v: %v", c.model, err)
		}
		if got.Status != c.wantStatus {
			t.Errorf("%v: status = %v, want %v", c.model, got.Status, c.wantStatus)
		}
		if c.model == CDStar && got.Payload != "from1" {
			t.Errorf("CDStar should deliver lowest-index transmitter, got %v", got.Payload)
		}
		if c.model == Local {
			if len(got.Payloads) != 2 || got.Payloads[0] != "from1" || got.Payloads[1] != "from2" {
				t.Errorf("Local payloads = %v", got.Payloads)
			}
		}
	}
}

func TestSilenceWhenNobodyTransmits(t *testing.T) {
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		g := graph.Path(2)
		var got Feedback
		_, err := RunDevices(Config{Graph: g, Model: model}, fill(2, map[int]Proc{
			1: rxOnce(5, &got),
		}))
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got.Status != Silence {
			t.Errorf("%v: status = %v, want silence", model, got.Status)
		}
	}
}

func TestNonNeighborNotHeard(t *testing.T) {
	// Path 0-1-2: 0 transmits, 2 listens; they are not adjacent.
	g := graph.Path(3)
	var got Feedback
	_, err := RunDevices(Config{Graph: g, Model: Local}, fill(3, map[int]Proc{
		0: txOnce(1, "x"),
		2: rxOnce(1, &got),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Silence {
		t.Errorf("non-neighbor heard a message: %+v", got)
	}
}

func TestTransmissionIsSlotLocal(t *testing.T) {
	// A listener in slot 2 must not hear a slot-1 transmission.
	g := graph.Path(2)
	var got Feedback
	_, err := RunDevices(Config{Graph: g, Model: Local}, fill(2, map[int]Proc{
		0: txOnce(1, "x"),
		1: rxOnce(2, &got),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Silence {
		t.Errorf("stale transmission heard: %+v", got)
	}
}

func TestFullDuplex(t *testing.T) {
	// Two adjacent devices both TransmitListen: each hears the other.
	g := graph.Path(2)
	var fb [2]Feedback
	duplex := func(out *Feedback, payload any) Proc {
		return ContProc(func(Channel) Cont {
			return Then(TransmitListen(1, payload), bindFeedback(func(got Feedback) Cont {
				*out = got
				return nil
			}))
		})
	}
	res, err := RunDevices(Config{Graph: g, Model: Local}, []Device{
		{Proc: duplex(&fb[0], "a")},
		{Proc: duplex(&fb[1], "b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb[0].Status != Received || fb[0].Payload != "b" {
		t.Errorf("device 0 heard %+v", fb[0])
	}
	if fb[1].Status != Received || fb[1].Payload != "a" {
		t.Errorf("device 1 heard %+v", fb[1])
	}
	// Awake-slot semantics: one slot awake costs 1, even full duplex; the
	// per-action split counters still see one transmit and one listen.
	if res.Energy[0] != 1 || res.Energy[1] != 1 {
		t.Errorf("full duplex should cost 1 awake slot: %v", res.Energy)
	}
	if res.Transmits[0] != 1 || res.Listens[0] != 1 || res.Transmits[1] != 1 || res.Listens[1] != 1 {
		t.Errorf("full duplex split counters wrong: tx=%v listen=%v", res.Transmits, res.Listens)
	}
}

func TestIdleSlotsAreSkipped(t *testing.T) {
	// A device acting at slot 1e9 must not cost 1e9 wall iterations.
	g := graph.Path(1)
	res, err := RunDevices(Config{Graph: g, Model: NoCD}, []Device{
		{Proc: txOnce(1_000_000_000, "late")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 1_000_000_000 {
		t.Errorf("slots = %d", res.Slots)
	}
	if res.Events != 1 {
		t.Errorf("events = %d", res.Events)
	}
}

func TestMaxSlotsBudget(t *testing.T) {
	g := graph.Path(1)
	_, err := RunDevices(Config{Graph: g, Model: NoCD, MaxSlots: 10}, []Device{
		{Proc: txOnce(11, "x")},
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestMaxEventsBudget(t *testing.T) {
	g := graph.Path(1)
	var s uint64
	_, err := RunDevices(Config{Graph: g, Model: NoCD, MaxEvents: 5}, []Device{
		{Proc: ProcFunc(func(Channel, Feedback) Action {
			s++
			return Transmit(s, "x")
		})},
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestDevicePanicSurfaces(t *testing.T) {
	g := graph.Path(2)
	_, err := RunDevices(Config{Graph: g, Model: NoCD}, fill(2, map[int]Proc{
		0: ProcFunc(func(Channel, Feedback) Action { panic("boom") }),
	}))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want device panic error, got %v", err)
	}
}

func TestSchedulingInPastFailsDeterministically(t *testing.T) {
	g := graph.Path(1)
	_, err := RunDevices(Config{Graph: g, Model: NoCD}, []Device{
		{Proc: ContProc(func(Channel) Cont {
			return Then(Transmit(5, "x"),
				Then(Transmit(3, "y"), nil)) // in the past: protocol bug
		})},
	})
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatalf("want clock error, got %v", err)
	}
}

func TestHaltTerminatesDeviceCleanly(t *testing.T) {
	g := graph.Path(2)
	res, err := RunDevices(Config{Graph: g, Model: NoCD}, fill(2, map[int]Proc{
		0: txOnce(1, "x"), // halts after one transmit; never acts in slot 2
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmits[0] != 1 {
		t.Errorf("halt did not stop the device: %d transmits", res.Transmits[0])
	}
	if res.Slots != 1 {
		t.Errorf("slots = %d after early halt", res.Slots)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	run := func() (*Result, []int) {
		g := graph.Clique(8)
		heard := make([]int, 8)
		devs := make([]Device, 8)
		for i := 0; i < 8; i++ {
			round := uint64(0)
			devs[i].Proc = ProcFunc(func(ch Channel, fb Feedback) Action {
				if fb.Status == Received {
					heard[ch.Index()]++
				}
				round++
				if round > 50 {
					return Halt()
				}
				if ch.Rand().Float64() < 0.3 {
					return Transmit(round, ch.Index())
				}
				return Listen(round)
			})
		}
		res, err := RunDevices(Config{Graph: g, Model: CD, Seed: 42}, devs)
		if err != nil {
			t.Fatal(err)
		}
		return res, heard
	}
	r1, h1 := run()
	r2, h2 := run()
	if r1.Slots != r2.Slots || r1.Events != r2.Events {
		t.Fatal("runs differ in slots/events")
	}
	for i := range h1 {
		if h1[i] != h2[i] || r1.Energy[i] != r2.Energy[i] {
			t.Fatalf("device %d differs across identical runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) uint64 {
		g := graph.Clique(8)
		devs := make([]Device, 8)
		total := uint64(0)
		for i := 0; i < 8; i++ {
			round := uint64(0)
			devs[i].Proc = ProcFunc(func(ch Channel, fb Feedback) Action {
				for {
					round++
					if round > 30 {
						return Halt()
					}
					if ch.Rand().Float64() < 0.5 {
						total += round
						return Transmit(round, 0)
					}
					// Tails: idle through this round.
				}
			})
		}
		if _, err := RunDevices(Config{Graph: g, Model: CD, Seed: seed}, devs); err != nil {
			t.Fatal(err)
		}
		return total
	}
	if run(1) == run(2) && run(3) == run(4) {
		t.Fatal("different seeds produced identical transmission patterns twice")
	}
}

// probe runs fn once on device i's channel handle, then halts.
func probe(fn func(ch Channel)) Proc {
	return ProcFunc(func(ch Channel, fb Feedback) Action {
		fn(ch)
		return Halt()
	})
}

func TestIDAssignment(t *testing.T) {
	g := graph.Path(3)
	got := make([]int, 3)
	devs := make([]Device, 3)
	for i := range devs {
		devs[i].Proc = probe(func(ch Channel) { got[ch.Index()] = ch.AssignedID() })
	}
	if _, err := RunDevices(Config{Graph: g, Model: CD, IDSpace: 10}, devs); err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if id != i+1 {
			t.Errorf("default ID of %d = %d", i, id)
		}
	}
	// Explicit IDs.
	got2 := make([]int, 3)
	devs2 := make([]Device, 3)
	for i := range devs2 {
		devs2[i].Proc = probe(func(ch Channel) { got2[ch.Index()] = ch.AssignedID() })
	}
	if _, err := RunDevices(Config{Graph: g, Model: CD, IDSpace: 10, IDs: []int{7, 3, 9}}, devs2); err != nil {
		t.Fatal(err)
	}
	if got2[0] != 7 || got2[1] != 3 || got2[2] != 9 {
		t.Errorf("explicit IDs = %v", got2)
	}
}

func TestIDValidation(t *testing.T) {
	g := graph.Path(2)
	if _, err := RunDevices(Config{Graph: g, Model: CD, IDSpace: 5, IDs: []int{1, 1}}, fill(2, nil)); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := RunDevices(Config{Graph: g, Model: CD, IDSpace: 5, IDs: []int{0, 1}}, fill(2, nil)); err == nil {
		t.Error("ID below 1 accepted")
	}
	if _, err := RunDevices(Config{Graph: g, Model: CD, IDSpace: 1}, fill(2, nil)); err == nil {
		t.Error("IDSpace < n accepted")
	}
	if _, err := RunDevices(Config{Graph: g, Model: CD, IDSpace: 5, IDs: []int{1}}, fill(2, nil)); err == nil {
		t.Error("short IDs slice accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunDevices(Config{Graph: nil, Model: NoCD}, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := RunDevices(Config{Graph: graph.New(0), Model: NoCD}, nil); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := RunDevices(Config{Graph: graph.Path(3), Model: NoCD}, fill(2, nil)); err == nil {
		t.Error("device count mismatch accepted")
	}
	if _, err := RunDevices(Config{Graph: graph.Path(2), Model: NoCD}, make([]Device, 2)); err == nil {
		t.Error("nil Proc accepted")
	}
}

func TestDiameterExposure(t *testing.T) {
	g := graph.Path(5)
	var d int
	var known bool
	devs := fill(5, map[int]Proc{0: probe(func(ch Channel) { d, known = ch.Diameter() })})
	if _, err := RunDevices(Config{Graph: g, Model: NoCD}, devs); err != nil {
		t.Fatal(err)
	}
	if known {
		t.Error("diameter known without KnowDiameter")
	}
	devs = fill(5, map[int]Proc{0: probe(func(ch Channel) { d, known = ch.Diameter() })})
	if _, err := RunDevices(Config{Graph: g, Model: NoCD, KnowDiameter: true}, devs); err != nil {
		t.Fatal(err)
	}
	if !known || d != 4 {
		t.Errorf("diameter = %d, known = %v", d, known)
	}
}

func TestEnvAccessors(t *testing.T) {
	g := graph.Star(4)
	var n, maxDeg, idx int
	var model Model
	devs := fill(4, map[int]Proc{2: probe(func(ch Channel) {
		n, maxDeg, idx, model = ch.N(), ch.MaxDegree(), ch.Index(), ch.Model()
	})})
	if _, err := RunDevices(Config{Graph: g, Model: CDStar}, devs); err != nil {
		t.Fatal(err)
	}
	if n != 4 || maxDeg != 3 || idx != 2 || model != CDStar {
		t.Errorf("accessors: n=%d maxDeg=%d idx=%d model=%v", n, maxDeg, idx, model)
	}
}

func TestSleepAndNow(t *testing.T) {
	g := graph.Path(1)
	_, err := RunDevices(Config{Graph: g, Model: NoCD}, []Device{
		{Proc: ContProc(func(Channel) Cont {
			return Then(Sleep(100), EvalCh(func(ch Channel) Cont {
				if ch.Now() != 100 {
					t.Errorf("Now = %d after Sleep(100)", ch.Now())
				}
				return Then(Sleep(50), EvalCh(func(ch Channel) Cont {
					if ch.Now() != 100 {
						t.Errorf("Sleep went backwards to %d", ch.Now())
					}
					return Then(Transmit(101, "x"), EvalCh(func(ch Channel) Cont {
						if ch.Now() != 101 {
							t.Errorf("Now = %d after Transmit(101)", ch.Now())
						}
						return nil
					}))
				}))
			}))
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceEvents(t *testing.T) {
	g := graph.Path(2)
	var events []Event
	cfg := Config{Graph: g, Model: CD, Trace: func(ev Event) { events = append(events, ev) }}
	_, err := RunDevices(cfg, fill(2, map[int]Proc{
		0: txOnce(1, "m"),
		1: ContProc(func(Channel) Cont {
			return Then(Listen(1), Then(Listen(2), nil))
		}),
	}))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	wantTx, wantRx, wantSil := 0, 0, 0
	for _, k := range kinds {
		switch k {
		case EventTransmit:
			wantTx++
		case EventReceive:
			wantRx++
		case EventSilence:
			wantSil++
		}
	}
	if wantTx != 1 || wantRx != 1 || wantSil != 1 {
		t.Errorf("trace events = %v", kinds)
	}
	for _, ev := range events {
		if ev.Kind == EventReceive && ev.From != 0 {
			t.Errorf("receive event From = %d", ev.From)
		}
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Energy: []int{3, 0, 5, 2}}
	if r.MaxEnergy() != 5 {
		t.Errorf("MaxEnergy = %d", r.MaxEnergy())
	}
	if r.TotalEnergy() != 10 {
		t.Errorf("TotalEnergy = %d", r.TotalEnergy())
	}
}

func TestModelAndStatusStrings(t *testing.T) {
	if NoCD.String() != "No-CD" || CD.String() != "CD" || CDStar.String() != "CD*" || Local.String() != "LOCAL" {
		t.Error("model names wrong")
	}
	if Model(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown enum should still stringify")
	}
	if Silence.String() != "silence" || Received.String() != "received" || Noise.String() != "noise" {
		t.Error("status names wrong")
	}
}

func TestManyDevicesLockstep(t *testing.T) {
	// n devices each transmit in their own slot; a hub listens to each.
	// Verifies cohort release ordering over many slots.
	const n = 64
	g := graph.Star(n + 1)
	heard := 0
	devs := make([]Device, n+1)
	hubSlot := uint64(0)
	devs[0].Proc = ProcFunc(func(ch Channel, fb Feedback) Action {
		if fb.Status == Received {
			heard++
		}
		hubSlot++
		if hubSlot > n {
			return Halt()
		}
		return Listen(hubSlot)
	})
	for i := 1; i <= n; i++ {
		devs[i].Proc = ContProc(func(ch Channel) Cont {
			return Then(Transmit(uint64(ch.Index()), ch.Index()), nil)
		})
	}
	res, err := RunDevices(Config{Graph: g, Model: CD}, devs)
	if err != nil {
		t.Fatal(err)
	}
	if heard != n {
		t.Errorf("hub heard %d of %d", heard, n)
	}
	if res.Slots != n {
		t.Errorf("slots = %d", res.Slots)
	}
}
