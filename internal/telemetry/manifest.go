package telemetry

import (
	"encoding/json"
	"io"
	"os"
)

// Manifest is the provenance record written next to every report: what
// was run (spec, seed, worker/batch config), what it cost (counters,
// phase and per-cell timings), and how each cell stopped. It is the
// record a content-addressable result store would key on (ROADMAP item
// 5): DeterministicJSON extracts the subset that is a pure function of
// the spec, while the full document adds the timing/scheduling
// provenance of this particular execution.
type Manifest struct {
	Tool    string `json:"tool"`
	Started string `json:"started,omitempty"`
	// Version is the CodeVersion of the producing binary. It is part of
	// the deterministic section: byte-identity across machines is only
	// claimed — and only cacheable — at one code version, so the fabric
	// smoke compares it along with the committed counts.
	Version string `json:"version,omitempty"`
	// StatusAddr is the resolved -status listen address (non-
	// deterministic provenance: ports differ per run), recorded so
	// tooling can reach a live run's endpoint without scraping stderr.
	StatusAddr string `json:"statusAddr,omitempty"`

	// Spec echoes the run's sweep.Spec (or the harness's own config);
	// MasterSeed inside it is the seed-derivation root. Adaptive holds
	// the controller parameters of an adaptive run, nil for fixed
	// sweeps. Both are `any` so this package imports only std.
	Spec     any `json:"spec,omitempty"`
	Adaptive any `json:"adaptive,omitempty"`

	Workers int `json:"workers,omitempty"`
	BatchW  int `json:"batchw,omitempty"`

	Snapshot      Snapshot     `json:"snapshot"`
	Phases        []Phase      `json:"phases,omitempty"`
	TraceMeasures []string     `json:"traceMeasures,omitempty"`
	Cells         []CellStatus `json:"cells"`

	// Fleet names every fabric worker that took part in the run — name,
	// resolved remote address, code version, last shipped snapshot, and
	// whether it was evicted (stale). Non-deterministic provenance, like
	// StatusAddr: which machines ran is scheduling, not spec.
	Fleet []WorkerSnapshot `json:"fleet,omitempty"`
}

// deterministicCell is CellStatus minus its wall-clock field.
type deterministicCell struct {
	Cell   int          `json:"cell"`
	Label  string       `json:"label"`
	Trials uint64       `json:"trials"`
	Stop   string       `json:"stop,omitempty"`
	Trace  []TracePoint `json:"trace,omitempty"`
}

// BuildManifest closes the recorder's current phase and assembles the
// manifest. spec and adaptive are echoed verbatim (either may be nil).
func (r *Recorder) BuildManifest(tool string, spec, adaptive any, workers, batchw int) Manifest {
	m := Manifest{Tool: tool, Version: CodeVersion(), Spec: spec, Adaptive: adaptive,
		Workers: workers, BatchW: batchw}
	if r == nil {
		return m
	}
	r.Phase("")
	m.Started = r.start.UTC().Format("2006-01-02T15:04:05.000Z07:00")
	m.Snapshot = r.Snapshot()
	m.Cells = r.Cells()
	m.Fleet = r.FleetWorkers()
	r.mu.Lock()
	m.Phases = append([]Phase(nil), r.phases...)
	m.TraceMeasures = append([]string(nil), r.traceMeasures...)
	m.StatusAddr = r.statusAddr
	r.mu.Unlock()
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path (0644, truncating).
func (m Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DeterministicJSON marshals the manifest subset that is a pure
// function of the spec and the code version — committed trial counts,
// injected-fault counts, stop reasons, cell labels, and convergence
// traces — excluding every timing and every scheduling-dependent
// counter (trials run, slots, cache traffic, fsyncs, status address). Two runs of the same spec at any -workers / -batchw produce
// identical bytes; the determinism tests pin exactly this.
func (m Manifest) DeterministicJSON() ([]byte, error) {
	cells := make([]deterministicCell, len(m.Cells))
	for i, c := range m.Cells {
		cells[i] = deterministicCell{Cell: c.Cell, Label: c.Label, Trials: c.Trials, Stop: c.Stop, Trace: c.Trace}
	}
	return json.MarshalIndent(struct {
		Tool            string              `json:"tool"`
		Version         string              `json:"version,omitempty"`
		Spec            any                 `json:"spec,omitempty"`
		Adaptive        any                 `json:"adaptive,omitempty"`
		TrialsCommitted uint64              `json:"trialsCommitted"`
		FaultCrashes    uint64              `json:"faultCrashes,omitempty"`
		FaultSleeps     uint64              `json:"faultSleeps,omitempty"`
		FaultErasures   uint64              `json:"faultErasures,omitempty"`
		TraceMeasures   []string            `json:"traceMeasures,omitempty"`
		Cells           []deterministicCell `json:"cells"`
	}{m.Tool, m.Version, m.Spec, m.Adaptive, m.Snapshot.TrialsCommitted,
		m.Snapshot.FaultCrashes, m.Snapshot.FaultSleeps, m.Snapshot.FaultErasures,
		m.TraceMeasures, cells}, "", "  ")
}
