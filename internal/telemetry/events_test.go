package telemetry

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// readEvents parses a JSONL event log back into documents, failing on
// any line that is not valid JSON or lacks the reserved keys.
func readEvents(t *testing.T, path string) []map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var docs []map[string]any
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		kind, _ := doc["event"].(string)
		if kind == "" {
			t.Fatalf("event line %q lacks kind", sc.Text())
		}
		ts, _ := doc["t"].(string)
		if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
			t.Fatalf("event line %q timestamp: %v", sc.Text(), err)
		}
		docs = append(docs, doc)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return docs
}

// Driving the recorder's lifecycle hooks with an event log attached
// must leave one well-formed JSON line per event, covering every kind
// the engines emit.
func TestEventLogLifecycleKinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	lg, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.SetEventLog(lg)
	r.StartCells([]string{"a"})
	r.Phase("resolve")
	r.Phase("trials")
	r.CommitTrials(0, 10) // first commit => cell-start + batch-commit
	r.CommitTrials(0, 5)
	r.JournalFsync(time.Microsecond)
	r.CellDone(0, "done")
	r.CellDone(0, "again") // duplicate: no second cell-stop
	r.Event("worker-join", map[string]any{"worker": "w1", "addr": "1.2.3.4:5", "version": "v", "capacity": 4})
	r.Event("lease-grant", map[string]any{"worker": "w1", "cell": 0, "lo": 0, "hi": 16})
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	docs := readEvents(t, path)
	byKind := map[string]int{}
	for _, d := range docs {
		byKind[d["event"].(string)]++
	}
	want := map[string]int{
		"phase":            2,
		"cell-start":       1,
		"batch-commit":     2,
		"checkpoint-fsync": 1,
		"cell-stop":        1,
		"worker-join":      1,
		"lease-grant":      1,
	}
	for kind, n := range want {
		if byKind[kind] != n {
			t.Fatalf("kind %q: %d events, want %d (all: %v)", kind, byKind[kind], n, byKind)
		}
	}
	// Spot-check payload fields survive round-trip.
	for _, d := range docs {
		switch d["event"] {
		case "batch-commit":
			if d["cell"].(float64) != 0 || d["trials"].(float64) == 0 {
				t.Fatalf("batch-commit payload = %v", d)
			}
		case "cell-stop":
			if d["reason"] != "done" {
				t.Fatalf("cell-stop payload = %v", d)
			}
		case "worker-join":
			if d["addr"] != "1.2.3.4:5" || d["capacity"].(float64) != 4 {
				t.Fatalf("worker-join payload = %v", d)
			}
		}
	}
}

// Reserved keys in caller fields must not clobber the envelope.
func TestEventLogReservedKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	lg, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	lg.Event("real-kind", map[string]any{"event": "spoofed", "t": "not-a-time", "x": 1})
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	docs := readEvents(t, path)
	if len(docs) != 1 || docs[0]["event"] != "real-kind" || docs[0]["x"].(float64) != 1 {
		t.Fatalf("docs = %v", docs)
	}
}

// A write failure goes quiet (advisory) but surfaces from Close.
func TestEventLogStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	lg, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	lg.f.Close() // force the next write to fail
	lg.Event("x", nil)
	lg.Event("y", nil) // must not panic after the sticky error
	if err := lg.Close(); err == nil {
		t.Fatal("Close did not surface the write error")
	}
}

// Fleet aggregation: shipped worker snapshots sum into the recorder's
// own Snapshot, eviction flags (but retains) a worker, and a redial
// resumes the same entry monotonically.
func TestFleetAggregation(t *testing.T) {
	r := New()
	r.StartCells([]string{"a"})
	r.CommitTrials(0, 30) // committed counts stay coordinator-side

	mkSnap := func(run, slots uint64, inflight int64) Snapshot {
		var h Histogram
		h.Observe(time.Millisecond)
		return Snapshot{
			TrialsRun: run, SlotsSimulated: slots, BatchesInFlight: inflight,
			SimCache:  CacheCounts{SoloHits: run},
			Latencies: map[string]HistogramSnapshot{LatencyBatch: h.Snapshot()},
		}
	}
	r.WorkerSeen("b-worker", "10.0.0.2:1", "v1")
	r.WorkerShard("b-worker", mkSnap(20, 2000, 1))
	r.WorkerSeen("a-worker", "10.0.0.1:1", "v1")
	r.WorkerShard("a-worker", mkSnap(10, 1000, 2))

	s := r.Snapshot()
	if s.TrialsRun != 30 || s.SlotsSimulated != 3000 || s.BatchesInFlight != 3 {
		t.Fatalf("fleet totals = run %d slots %d inflight %d", s.TrialsRun, s.SlotsSimulated, s.BatchesInFlight)
	}
	if s.TrialsCommitted != 30 {
		t.Fatalf("committed = %d, want 30 (coordinator-side only)", s.TrialsCommitted)
	}
	if s.SimCache.SoloHits != 30 {
		t.Fatalf("cache hits = %d, want 30", s.SimCache.SoloHits)
	}
	if s.Latencies[LatencyBatch].Count != 2 {
		t.Fatalf("merged batch histogram count = %d, want 2", s.Latencies[LatencyBatch].Count)
	}
	ws := r.FleetWorkers()
	if len(ws) != 2 || ws[0].Name != "a-worker" || ws[1].Name != "b-worker" {
		t.Fatalf("fleet = %+v", ws)
	}
	if ws[0].Addr != "10.0.0.1:1" || ws[0].Version != "v1" {
		t.Fatalf("worker identity = %+v", ws[0])
	}

	// Eviction: entry flagged stale, counters retained, gauge dropped.
	r.WorkerGone("a-worker")
	ws = r.FleetWorkers()
	if !ws[0].Stale || ws[0].Snapshot.TrialsRun != 10 {
		t.Fatalf("evicted worker = %+v", ws[0])
	}
	s = r.Snapshot()
	if s.TrialsRun != 30 {
		t.Fatalf("post-eviction trials run = %d, want 30 (retained)", s.TrialsRun)
	}
	if s.BatchesInFlight != 1 {
		t.Fatalf("post-eviction inflight = %d, want 1 (stale gauge dropped)", s.BatchesInFlight)
	}

	// Redial: same name rejoins, stale clears, counters resume above the
	// old values (the worker process kept its recorder).
	r.WorkerSeen("a-worker", "10.0.0.1:2", "v1")
	r.WorkerShard("a-worker", mkSnap(15, 1500, 0))
	ws = r.FleetWorkers()
	if ws[0].Stale || ws[0].Addr != "10.0.0.1:2" || ws[0].Snapshot.TrialsRun != 15 {
		t.Fatalf("redialed worker = %+v", ws[0])
	}
	if s = r.Snapshot(); s.TrialsRun != 35 || s.SlotsSimulated != 3500 {
		t.Fatalf("post-redial totals = run %d slots %d", s.TrialsRun, s.SlotsSimulated)
	}
}
