// Package telemetry is the observability layer of the sweep engine: a
// zero-overhead-when-disabled collector of run counters (trials, slots,
// batches in flight, simulator-cache traffic, journal fsyncs), per-cell
// progress and convergence traces, and phase timings, aggregated on
// demand into an immutable Snapshot. It backs cmd/sweep's -status HTTP
// endpoint, the /metrics Prometheus exposition (metrics.go), the
// -progress terminal reporter, the -events structured event log
// (events.go), and the run manifest written next to every report
// (manifest.go).
//
// # Fleet aggregation
//
// A fabric worker (internal/fabric) runs its own Recorder and ships
// merged Snapshots to the coordinator inside heartbeat and result
// frames; the coordinator folds them in via WorkerShard, so its
// Snapshot — and therefore /status, /metrics, and the manifest — covers
// the whole fleet. Worker counters are monotonic per worker process, so
// a re-joining worker's shard resumes where it left off; an evicted
// worker's last shard is retained and flagged stale (WorkerGone).
//
// # Design
//
// Everything on or near the hot path is sharded: each worker goroutine
// owns one Shard and updates it with uncontended atomic adds once per
// trial batch — never per slot or per device — so the radio engine's
// zero-alloc steady state is untouched (the CI gate on
// BenchmarkSimulatorThroughput holds with telemetry enabled). Readers
// (the HTTP handler, the progress printer) merge the shards on demand;
// they never block a worker.
//
// A nil *Recorder is the disabled layer: every method on a nil Recorder
// or nil Shard is a no-op, so instrumentation sites need no branching
// beyond what the compiler inlines away.
//
// # Determinism
//
// Committed-trial counts, stop reasons, and convergence traces are pure
// functions of the spec and controller parameters — bit-identical for
// any worker count, batching width, interruption or resume — and are
// what Manifest.DeterministicJSON pins. Wall-clock figures (phase and
// per-cell timings, elapsed seconds) and scheduling-dependent counters
// (speculative trials, cache hits, fsyncs, batches in flight) are
// provenance, not invariants, and are excluded from that subset.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CacheCounts mirrors radio.SimCache's hit/miss counters, split by the
// cache's two MRU lists (solo simulators and batch engines). Counts are
// scheduling-dependent: which worker's cache serves a trial depends on
// job distribution.
type CacheCounts struct {
	SoloHits    uint64 `json:"soloHits"`
	SoloMisses  uint64 `json:"soloMisses"`
	BatchHits   uint64 `json:"batchHits"`
	BatchMisses uint64 `json:"batchMisses"`
}

// Snapshot is one immutable aggregate of the recorder's counters, merged
// across shards at read time.
type Snapshot struct {
	// ElapsedSeconds is wall-clock since New (a timing, never pinned).
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// TrialsCommitted counts trials merged into committed state —
	// deterministic for a fixed spec.
	TrialsCommitted uint64 `json:"trialsCommitted"`
	// TrialsRun counts trials executed, including adaptive speculation
	// past stop points (scheduling-dependent, >= TrialsCommitted).
	TrialsRun uint64 `json:"trialsRun"`
	// SlotsSimulated sums the slot counts of executed trials.
	SlotsSimulated uint64 `json:"slotsSimulated"`
	// BatchesInFlight counts trial batches currently executing.
	BatchesInFlight int64 `json:"batchesInFlight"`
	// CellsTotal and CellsDone count matrix cells total and finished
	// (converged, capped, or fully run).
	CellsTotal int `json:"cellsTotal"`
	CellsDone  int `json:"cellsDone"`
	// JournalFsyncs counts checkpoint-journal fsyncs (one per record).
	JournalFsyncs uint64 `json:"journalFsyncs"`
	// FaultCrashes/FaultSleeps/FaultErasures count the faults injected
	// during committed trials (internal/fault). Like TrialsCommitted they
	// are deterministic for a fixed spec — faults are positional hashes
	// and every trial commits exactly once — and all zero (omitted from
	// the JSON) for fault-free runs.
	FaultCrashes  uint64 `json:"faultCrashes,omitempty"`
	FaultSleeps   uint64 `json:"faultSleeps,omitempty"`
	FaultErasures uint64 `json:"faultErasures,omitempty"`
	// SimCache aggregates the workers' simulator-cache traffic.
	SimCache CacheCounts `json:"simCache"`
	// Latencies holds the run's latency histograms, keyed by
	// LatencyBatch / LatencyJournalFsync / LatencyLeaseRoundTrip, merged
	// across shards and fleet workers. Absent until something records.
	Latencies map[string]HistogramSnapshot `json:"latencies,omitempty"`
}

// WorkerSnapshot is the coordinator's record of one fleet worker: its
// identity (name, resolved remote address, code version) and the last
// telemetry snapshot it shipped. Stale marks a worker that was evicted
// or lost — its counters stay in the fleet aggregate (the work
// happened) but its in-flight gauge does not.
type WorkerSnapshot struct {
	Name     string   `json:"name"`
	Addr     string   `json:"addr,omitempty"`
	Version  string   `json:"version,omitempty"`
	Stale    bool     `json:"stale,omitempty"`
	Snapshot Snapshot `json:"snapshot"`
}

// TracePoint is one step of a cell's convergence trace: the state of the
// committed prefix after merging batch Batch. RelCI holds the relative
// CI half-width of each targeted measure (TraceMeasures order); -1
// stands in for undefined values (NaN/Inf) so the JSON stays parseable.
type TracePoint struct {
	Batch  int       `json:"batch"`
	Trials int       `json:"trials"`
	RelCI  []float64 `json:"relCI,omitempty"`
}

// CellStatus is one cell's live progress: committed trials, accumulated
// worker wall-clock, stop reason ("" while running), and the convergence
// trace of an adaptive run.
type CellStatus struct {
	Cell        int          `json:"cell"`
	Label       string       `json:"label"`
	Trials      uint64       `json:"trials"`
	WallSeconds float64      `json:"wallSeconds"`
	Stop        string       `json:"stop,omitempty"`
	Trace       []TracePoint `json:"trace,omitempty"`
}

// Status is the -status endpoint's JSON document.
type Status struct {
	Snapshot      Snapshot     `json:"snapshot"`
	TraceMeasures []string     `json:"traceMeasures,omitempty"`
	Cells         []CellStatus `json:"cells"`
}

// Phase is one timed span of a run (resolve, replay, trials, ...).
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Shard is one worker's private counter block. Writes are uncontended
// atomic adds (the owner is the only writer; readers merge on demand),
// and the trailing pad keeps neighboring shards off one cache line.
type Shard struct {
	rec       *Recorder
	trialsRun atomic.Uint64
	slots     atomic.Uint64
	inflight  atomic.Int64
	// cache holds the owner worker's SimCache counters as absolute
	// values (Store, not Add): solo hits/misses, batch hits/misses.
	cache [4]atomic.Uint64
	// batch is the shard-local batch-latency histogram (one Observe per
	// BatchDone, merged into Snapshot.Latencies[LatencyBatch] on read).
	batch Histogram
	_     [40]byte
}

// BatchStart marks one trial batch as in flight.
func (s *Shard) BatchStart() {
	if s == nil {
		return
	}
	s.inflight.Add(1)
}

// BatchDone retires one executed batch: n trials summing to slots
// simulated slots, spent d of worker wall-clock on cell.
func (s *Shard) BatchDone(cell, n int, slots uint64, d time.Duration) {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
	s.trialsRun.Add(uint64(n))
	s.slots.Add(slots)
	s.batch.Observe(d)
	if cell >= 0 && cell < len(s.rec.cellNanos) {
		s.rec.cellNanos[cell].Add(int64(d))
	}
}

// SetCache publishes the owner worker's simulator-cache counters
// (absolute values; the snapshot sums shards).
func (s *Shard) SetCache(c CacheCounts) {
	if s == nil {
		return
	}
	s.cache[0].Store(c.SoloHits)
	s.cache[1].Store(c.SoloMisses)
	s.cache[2].Store(c.BatchHits)
	s.cache[3].Store(c.BatchMisses)
}

// Recorder is the run-wide collector. The zero value is unusable; New
// starts the wall clock. A nil *Recorder is the disabled layer — every
// method no-ops — so callers thread one pointer unconditionally.
type Recorder struct {
	start time.Time

	committed atomic.Uint64
	fsyncs    atomic.Uint64
	cellsDone atomic.Int64
	// faults[0..2] hold committed crash/sleep/erasure counts (CommitFaults).
	faults [3]atomic.Uint64
	// extraRun/extraSlots back Add, the shard-less convenience counter
	// for single-goroutine harnesses (cmd/energybench).
	extraRun   atomic.Uint64
	extraSlots atomic.Uint64
	// fsyncLat and leaseLat are the recorder-level latency histograms:
	// checkpoint fsyncs (JournalFsync) and fabric lease round-trips
	// (LeaseRoundTrip). Batch latency lives in the shards.
	fsyncLat Histogram
	leaseLat Histogram
	// events is the attached structured event log, nil when -events is
	// off (events.go).
	events atomic.Pointer[EventLog]

	shards     []Shard
	cellTrials []atomic.Uint64
	cellNanos  []atomic.Int64

	mu            sync.Mutex
	labels        []string
	cellStop      []string
	traces        [][]TracePoint
	traceMeasures []string
	phases        []Phase
	curPhase      string
	phaseStart    time.Time
	statusAddr    string
	// workers is the fleet table: the last snapshot each fabric worker
	// shipped, keyed by worker name (WorkerSeen / WorkerShard /
	// WorkerGone). Merged into Snapshot and listed in the manifest.
	workers         map[string]*WorkerSnapshot
	metricAppenders []func(io.Writer)
}

// New starts a recorder (and its wall clock).
func New() *Recorder {
	return &Recorder{start: time.Now()}
}

// Enabled reports whether telemetry is live (r != nil), for callers
// whose instrumentation needs preparatory work no nil method can elide.
func (r *Recorder) Enabled() bool { return r != nil }

// StartCells installs the matrix: one label per cell, in canonical
// (seed-derivation) order. It resets any previous per-cell state, so a
// recorder tracks one matrix at a time. Call before Shards and before
// any worker runs.
func (r *Recorder) StartCells(labels []string) {
	if r == nil {
		return
	}
	r.cellTrials = make([]atomic.Uint64, len(labels))
	r.cellNanos = make([]atomic.Int64, len(labels))
	r.mu.Lock()
	r.labels = append([]string(nil), labels...)
	r.cellStop = make([]string, len(labels))
	r.traces = make([][]TracePoint, len(labels))
	r.mu.Unlock()
	r.cellsDone.Store(0)
}

// TraceMeasures names the convergence-trace columns (the adaptive run's
// CI-targeted measures, in TracePoint.RelCI order).
func (r *Recorder) TraceMeasures(names []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceMeasures = append([]string(nil), names...)
	r.mu.Unlock()
}

// Shards allocates n worker shards (replacing any previous set) and is
// called once per run, before the pool starts.
func (r *Recorder) Shards(n int) {
	if r == nil {
		return
	}
	r.shards = make([]Shard, n)
	for i := range r.shards {
		r.shards[i].rec = r
	}
}

// Shard returns worker i's shard, nil when telemetry is disabled or i
// is out of range.
func (r *Recorder) Shard(i int) *Shard {
	if r == nil || i < 0 || i >= len(r.shards) {
		return nil
	}
	return &r.shards[i]
}

// CommitTrials folds n committed trials into cell's count, returning
// the cell's new committed total. Committed counts are the
// deterministic spine of the telemetry: for a fixed spec they are
// bit-identical for any worker count or batching width.
func (r *Recorder) CommitTrials(cell, n int) uint64 {
	if r == nil {
		return 0
	}
	r.committed.Add(uint64(n))
	if cell < 0 || cell >= len(r.cellTrials) {
		return 0
	}
	total := r.cellTrials[cell].Add(uint64(n))
	if r.eventsOn() {
		// The first committed batch is the cell's observable start: both
		// engines commit in admission order, so total == n identifies it
		// exactly (atomic adds return unique totals).
		if total == uint64(n) {
			r.Event("cell-start", map[string]any{"cell": cell})
		}
		r.Event("batch-commit", map[string]any{"cell": cell, "trials": n, "committed": total})
	}
	return total
}

// CommitFaults folds the injected-fault counts of committed trials into
// the run totals. Callers commit each trial's counts exactly once — at
// the same point its trial commits — so, like committed trial counts,
// the totals are deterministic for a fixed spec (fault decisions are
// positional hashes of (device, slot), never scheduling-dependent).
func (r *Recorder) CommitFaults(crashes, sleeps, erasures uint64) {
	if r == nil {
		return
	}
	r.faults[0].Add(crashes)
	r.faults[1].Add(sleeps)
	r.faults[2].Add(erasures)
}

// CellDone marks one cell finished with a stop reason ("ci",
// "max-trials", or "done" for fixed sweeps).
func (r *Recorder) CellDone(cell int, reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fresh := cell >= 0 && cell < len(r.cellStop) && r.cellStop[cell] == ""
	if fresh {
		r.cellStop[cell] = reason
		r.cellsDone.Add(1)
	}
	r.mu.Unlock()
	if fresh {
		r.Event("cell-stop", map[string]any{"cell": cell, "reason": reason})
	}
}

// Trace appends one convergence-trace point to cell's trace. relCI is
// copied, with non-finite values replaced by the -1 sentinel so the
// trace always serializes.
func (r *Recorder) Trace(cell, batch, trials int, relCI []float64) {
	if r == nil {
		return
	}
	rel := make([]float64, len(relCI))
	for i, x := range relCI {
		if x != x || x > 1e300 || x < -1e300 {
			x = -1
		}
		rel[i] = x
	}
	r.mu.Lock()
	if cell >= 0 && cell < len(r.traces) {
		r.traces[cell] = append(r.traces[cell], TracePoint{Batch: batch, Trials: trials, RelCI: rel})
	}
	r.mu.Unlock()
}

// JournalFsync counts one checkpoint-journal fsync that took d, feeding
// the LatencyJournalFsync histogram and the event log.
func (r *Recorder) JournalFsync(d time.Duration) {
	if r == nil {
		return
	}
	r.fsyncs.Add(1)
	r.fsyncLat.Observe(d)
	if r.eventsOn() {
		r.Event("checkpoint-fsync", map[string]any{"seconds": d.Seconds()})
	}
}

// LeaseRoundTrip records one fabric lease's issue-to-result latency
// into the LatencyLeaseRoundTrip histogram.
func (r *Recorder) LeaseRoundTrip(d time.Duration) {
	if r == nil {
		return
	}
	r.leaseLat.Observe(d)
}

// Add folds n finished trials (summing to slots simulated slots) into
// the recorder without a shard — the single-goroutine convenience for
// harnesses (cmd/energybench) that have no worker pool of their own.
// The trials count as both run and committed.
func (r *Recorder) Add(n int, slots uint64) {
	if r == nil {
		return
	}
	r.extraRun.Add(uint64(n))
	r.extraSlots.Add(slots)
	r.committed.Add(uint64(n))
}

// WorkerSeen upserts a fleet worker's identity — name, resolved remote
// address, code version — clearing any stale flag from a previous
// eviction. The coordinator calls it at the handshake; the worker's
// counters resume monotonically because the worker process keeps one
// Recorder across redials.
func (r *Recorder) WorkerSeen(name, addr, version string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.workers == nil {
		r.workers = map[string]*WorkerSnapshot{}
	}
	w := r.workers[name]
	if w == nil {
		w = &WorkerSnapshot{Name: name}
		r.workers[name] = w
	}
	w.Addr, w.Version, w.Stale = addr, version, false
}

// WorkerShard stores the latest snapshot a fleet worker shipped.
// Worker run/slot/cache counters and latency histograms merge into
// this recorder's Snapshot; committing stays with the admission rule
// (CommitTrials), so TrialsRun includes speculation and stolen re-runs
// while TrialsCommitted stays deterministic.
func (r *Recorder) WorkerShard(name string, s Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.workers == nil {
		r.workers = map[string]*WorkerSnapshot{}
	}
	w := r.workers[name]
	if w == nil {
		w = &WorkerSnapshot{Name: name}
		r.workers[name] = w
	}
	w.Snapshot, w.Stale = s, false
}

// WorkerGone flags a fleet worker stale (evicted or connection lost).
// Its last snapshot is retained — the trials it ran happened — but its
// in-flight gauge stops counting. A later WorkerSeen/WorkerShard for
// the same name (a redial) clears the flag.
func (r *Recorder) WorkerGone(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if w := r.workers[name]; w != nil {
		w.Stale = true
	}
	r.mu.Unlock()
}

// FleetWorkers lists the fleet table (copied, sorted by name) — the
// manifest's record of which machines ran the sweep, and /fabric's
// per-worker telemetry column.
func (r *Recorder) FleetWorkers() []WorkerSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]WorkerSnapshot, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, *w)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetStatusAddr records the resolved -status listen address for the
// manifest's non-deterministic section, so tooling can find the live
// endpoint of a run (":0" included) without scraping stderr.
func (r *Recorder) SetStatusAddr(addr string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.statusAddr = addr
	r.mu.Unlock()
}

// Phase closes the current phase (if any) and opens a named one. Phase
// timings land in the manifest; the final phase is closed by
// BuildManifest or a Phase("") call.
func (r *Recorder) Phase(name string) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	if r.curPhase != "" {
		r.phases = append(r.phases, Phase{Name: r.curPhase, Seconds: now.Sub(r.phaseStart).Seconds()})
	}
	r.curPhase, r.phaseStart = name, now
	r.mu.Unlock()
	if name != "" {
		r.Event("phase", map[string]any{"phase": name})
	}
}

// Snapshot merges every shard — and, on a fabric coordinator, every
// fleet worker's shipped snapshot — into one immutable aggregate.
// Worker shards contribute their run-side counters (trials run, slots,
// cache traffic, latency histograms; in-flight batches only while the
// worker is live); committed counts, fault totals, cells, and fsyncs
// are coordinator-side state and never double count.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		ElapsedSeconds:  time.Since(r.start).Seconds(),
		TrialsCommitted: r.committed.Load(),
		TrialsRun:       r.extraRun.Load(),
		SlotsSimulated:  r.extraSlots.Load(),
		JournalFsyncs:   r.fsyncs.Load(),
		FaultCrashes:    r.faults[0].Load(),
		FaultSleeps:     r.faults[1].Load(),
		FaultErasures:   r.faults[2].Load(),
		CellsDone:       int(r.cellsDone.Load()),
	}
	lat := map[string]HistogramSnapshot{}
	addLat := func(key string, h HistogramSnapshot) {
		if h.Count == 0 {
			return
		}
		cur := lat[key]
		cur.Merge(h)
		lat[key] = cur
	}
	for i := range r.shards {
		sh := &r.shards[i]
		s.TrialsRun += sh.trialsRun.Load()
		s.SlotsSimulated += sh.slots.Load()
		s.BatchesInFlight += sh.inflight.Load()
		s.SimCache.SoloHits += sh.cache[0].Load()
		s.SimCache.SoloMisses += sh.cache[1].Load()
		s.SimCache.BatchHits += sh.cache[2].Load()
		s.SimCache.BatchMisses += sh.cache[3].Load()
		addLat(LatencyBatch, sh.batch.Snapshot())
	}
	addLat(LatencyJournalFsync, r.fsyncLat.Snapshot())
	addLat(LatencyLeaseRoundTrip, r.leaseLat.Snapshot())
	r.mu.Lock()
	s.CellsTotal = len(r.labels)
	for _, w := range r.workers {
		s.TrialsRun += w.Snapshot.TrialsRun
		s.SlotsSimulated += w.Snapshot.SlotsSimulated
		s.SimCache.SoloHits += w.Snapshot.SimCache.SoloHits
		s.SimCache.SoloMisses += w.Snapshot.SimCache.SoloMisses
		s.SimCache.BatchHits += w.Snapshot.SimCache.BatchHits
		s.SimCache.BatchMisses += w.Snapshot.SimCache.BatchMisses
		if !w.Stale {
			s.BatchesInFlight += w.Snapshot.BatchesInFlight
		}
		for k, h := range w.Snapshot.Latencies {
			addLat(k, h)
		}
	}
	r.mu.Unlock()
	if len(lat) > 0 {
		s.Latencies = lat
	}
	return s
}

// Cells returns every cell's live status, traces included (copied; the
// caller owns the result).
func (r *Recorder) Cells() []CellStatus {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CellStatus, len(r.labels))
	for i := range r.labels {
		out[i] = CellStatus{
			Cell:        i,
			Label:       r.labels[i],
			Trials:      r.cellTrials[i].Load(),
			WallSeconds: float64(r.cellNanos[i].Load()) / 1e9,
			Stop:        r.cellStop[i],
			Trace:       append([]TracePoint(nil), r.traces[i]...),
		}
	}
	return out
}

// StatusDoc assembles the -status endpoint's document.
func (r *Recorder) StatusDoc() Status {
	if r == nil {
		return Status{}
	}
	r.mu.Lock()
	measures := append([]string(nil), r.traceMeasures...)
	r.mu.Unlock()
	return Status{Snapshot: r.Snapshot(), TraceMeasures: measures, Cells: r.Cells()}
}

// StartProgress launches the periodic one-line terminal reporter: every
// interval it rewrites one \r-anchored line with committed trials, done
// cells, the trial-commit rate, and an ETA extrapolated from that rate.
// totalTrials is the run's expected trial total (0 suppresses the ETA);
// upperBound marks it as a cap (adaptive runs finish early), rendering
// the ETA as "<= x". The returned stop function prints the final state
// and a newline; it must be called before the process's own final
// output.
func (r *Recorder) StartProgress(w io.Writer, interval time.Duration, totalTrials uint64, upperBound bool) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	line := func() {
		s := r.Snapshot()
		fmt.Fprintf(w, "\rsweep: %d", s.TrialsCommitted)
		if totalTrials > 0 {
			if upperBound {
				fmt.Fprintf(w, "/<=%d", totalTrials)
			} else {
				fmt.Fprintf(w, "/%d", totalTrials)
			}
		}
		fmt.Fprintf(w, " trials · %d/%d cells", s.CellsDone, s.CellsTotal)
		if s.ElapsedSeconds > 0 {
			rate := float64(s.TrialsCommitted) / s.ElapsedSeconds
			fmt.Fprintf(w, " · %.0f trials/s", rate)
			if totalTrials > 0 && rate > 0 && s.TrialsCommitted < totalTrials {
				eta := float64(totalTrials-s.TrialsCommitted) / rate
				prefix := ""
				if upperBound {
					prefix = "<="
				}
				fmt.Fprintf(w, " · ETA %s%s", prefix, time.Duration(eta*float64(time.Second)).Round(time.Second))
			}
		}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				line()
			case <-done:
				line()
				fmt.Fprintln(w)
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
