package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The /metrics endpoint must serve a well-formed text exposition: the
// right content type, HELP and TYPE lines before every family's
// samples, monotone cumulative histogram buckets, and counter values
// matching the recorder's state.
func TestMetricsExposition(t *testing.T) {
	r := New()
	r.StartCells([]string{"a", "b"})
	r.Shards(2)
	sh := r.Shard(0)
	sh.BatchStart()
	sh.BatchDone(0, 10, 1000, time.Millisecond)
	sh.SetCache(CacheCounts{SoloHits: 3, BatchMisses: 2})
	r.CommitTrials(0, 42)
	r.CommitFaults(1, 2, 3)
	r.JournalFsync(time.Microsecond)
	r.LeaseRoundTrip(2 * time.Millisecond)
	r.CellDone(0, "done")
	r.AddMetrics(func(w io.Writer) {
		fmt.Fprintf(w, "# HELP sweep_fabric_workers Connected fabric workers.\n")
		fmt.Fprintf(w, "# TYPE sweep_fabric_workers gauge\n")
		fmt.Fprintf(w, "sweep_fabric_workers 2\n")
	})

	addr, shutdown, err := StartStatusServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("content type = %q, want %q", ct, MetricsContentType)
	}

	helped := map[string]bool{}
	typed := map[string]string{}
	values := map[string]float64{}
	var order []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad TYPE %q in %q", typ, line)
			}
			typed[name] = typ
			continue
		}
		// Sample line: name{labels} value.
		sample, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q value does not parse: %v", line, err)
		}
		family, _, _ := strings.Cut(sample, "{")
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family, "_bucket"), "_sum"), "_count")
		if !helped[family] && !helped[base] {
			t.Fatalf("sample %q has no HELP line", line)
		}
		if _, ok := typed[family]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("sample %q has no TYPE line", line)
			}
		}
		values[sample] = v
		order = append(order, sample)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if v := values["sweep_trials_committed_total"]; v != 42 {
		t.Fatalf("trials committed = %v, want 42", v)
	}
	if v := values["sweep_trials_run_total"]; v != 10 {
		t.Fatalf("trials run = %v, want 10", v)
	}
	if v := values[`sweep_faults_injected_total{kind="sleep"}`]; v != 2 {
		t.Fatalf("sleep faults = %v, want 2", v)
	}
	if v := values["sweep_fabric_workers"]; v != 2 {
		t.Fatalf("appender gauge = %v, want 2", v)
	}

	// Histogram checks: each *_bucket series must be cumulative with
	// strictly increasing le bounds, end at +Inf, and agree with _count.
	for _, fam := range []string{"sweep_batch_seconds", "sweep_journal_fsync_seconds", "sweep_lease_round_trip_seconds"} {
		if typed[fam] != "histogram" {
			t.Fatalf("%s TYPE = %q, want histogram", fam, typed[fam])
		}
		var prevCum, lastCum float64
		prevLe := -1.0
		sawInf := false
		for _, sample := range order {
			if !strings.HasPrefix(sample, fam+"_bucket{le=") {
				continue
			}
			le := strings.TrimSuffix(strings.TrimPrefix(sample, fam+`_bucket{le="`), `"}`)
			cum := values[sample]
			if cum < prevCum {
				t.Fatalf("%s not cumulative at le=%s: %v < %v", fam, le, cum, prevCum)
			}
			if le == "+Inf" {
				sawInf = true
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s le=%q does not parse: %v", fam, le, err)
				}
				if bound <= prevLe {
					t.Fatalf("%s le bounds not increasing: %v after %v", fam, bound, prevLe)
				}
				prevLe = bound
			}
			prevCum, lastCum = cum, cum
		}
		if !sawInf {
			t.Fatalf("%s has no +Inf bucket", fam)
		}
		if count := values[fam+"_count"]; count != lastCum || count == 0 {
			t.Fatalf("%s count = %v, +Inf cum = %v", fam, count, lastCum)
		}
		if values[fam+"_sum"] <= 0 {
			t.Fatalf("%s sum = %v, want > 0", fam, values[fam+"_sum"])
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	got := EscapeLabelValue("a\\b\"c\nd")
	if want := `a\\b\"c\nd`; got != want {
		t.Fatalf("escaped = %q, want %q", got, want)
	}
}

func TestCamelToSnake(t *testing.T) {
	for in, want := range map[string]string{
		"batch":          "batch",
		"journalFsync":   "journal_fsync",
		"leaseRoundTrip": "lease_round_trip",
	} {
		if got := camelToSnake(in); got != want {
			t.Fatalf("camelToSnake(%q) = %q, want %q", in, got, want)
		}
	}
}
