package telemetry

import (
	"runtime/debug"
	"sync"
)

// codeVersion resolves once: build info is immutable per process.
var codeVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Path
	if v == "" {
		v = "unknown"
	}
	if bi.Main.Version != "" {
		v += "@" + bi.Main.Version
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += " " + rev + modified
	}
	return v
})

// CodeVersion identifies the running code: module path and version from
// runtime/debug.ReadBuildInfo, plus the embedded VCS revision (and a
// +dirty marker) when the binary was built from a checkout. It stamps
// the run manifest and the fabric handshake: determinism across
// machines is only meaningful at one code version, so a coordinator
// refuses workers whose CodeVersion differs from its own
// (internal/fabric), and a result cache would key on it (ROADMAP item
// 5). Binaries built without VCS metadata (go test binaries, vendored
// builds) still agree as long as they come from the same build of the
// same module.
func CodeVersion() string { return codeVersion() }
