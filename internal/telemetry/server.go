package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartStatusServer serves the recorder's live state over HTTP on addr
// (host:port; port 0 picks a free one):
//
//	/status        the Status document (snapshot + per-cell progress)
//	/metrics       Prometheus text exposition (WriteMetrics)
//	/debug/pprof/  the standard net/http/pprof handlers
//	/              a link index
//
// Each extend callback may register additional handlers on the same mux
// before it starts serving — how the fabric coordinator mounts its
// /fabric page next to /status (internal/fabric).
//
// It returns the resolved listen address (useful with port 0) and a
// shutdown function. Errors from the listener are returned; serve-loop
// errors after startup are dropped (the endpoint is advisory — it must
// never take a run down with it).
func StartStatusServer(addr string, r *Recorder, extend ...func(*http.ServeMux)) (resolved string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	for _, fn := range extend {
		fn(mux)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.StatusDoc())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(`<html><body><a href="/status">status</a> · <a href="/metrics">metrics</a> · <a href="/debug/pprof/">pprof</a></body></html>`))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		// Bounded, forceful stop: in-flight /status responses are tiny
		// and a hung pprof stream must not delay process exit.
		srv.SetKeepAlivesEnabled(false)
		done := make(chan struct{})
		go func() { srv.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
		}
	}, nil
}
