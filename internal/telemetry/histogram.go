package telemetry

// Latency histograms follow the same discipline as the counters: hot
// paths record with uncontended atomic adds (one Observe per trial
// batch, never per slot), and readers merge on demand. Buckets are
// powers of two of the observation in nanoseconds, so recording is a
// bits.Len64 and an add — no search, no floats, no allocation — and two
// histograms recorded on different machines merge exactly (bucket i
// means the same range everywhere).

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count: bucket 0 holds zero-duration
// observations and bucket i (1..64) holds observations v in nanoseconds
// with 2^(i-1) <= v < 2^i, i.e. i = bits.Len64(v).
const histBuckets = 65

// Latency-histogram keys used in Snapshot.Latencies (and, snake-cased,
// in the /metrics exposition).
const (
	// LatencyBatch is the wall-clock of one executed trial batch.
	LatencyBatch = "batch"
	// LatencyJournalFsync is the fsync of one checkpoint-journal record.
	LatencyJournalFsync = "journalFsync"
	// LatencyLeaseRoundTrip is a fabric lease's issue-to-result time.
	LatencyLeaseRoundTrip = "leaseRoundTrip"
)

// Histogram is a mergeable log-bucketed latency histogram. The zero
// value is ready to use; a nil *Histogram no-ops Observe like the rest
// of the package. Writers call Observe concurrently; readers call
// Snapshot at any time (counts and sum are each atomic but not mutually
// consistent mid-record — snapshots are monitoring data, not ledgers).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations (clock steps) clamp
// to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(d))
	h.buckets[bits.Len64(uint64(d))].Add(1)
}

// Snapshot merges the histogram's current state into an immutable
// snapshot, buckets trimmed after the last non-empty one.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sum.Load()) / 1e9,
	}
	last := -1
	var buckets [histBuckets]uint64
	for i := range buckets {
		if buckets[i] = h.buckets[i].Load(); buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), buckets[:last+1]...)
	}
	return s
}

// HistogramSnapshot is the serializable form of a Histogram. Buckets[i]
// counts observations in bucket i (see histBuckets); trailing empty
// buckets are trimmed. Two snapshots — from different shards, processes,
// or machines — merge losslessly because bucket boundaries are fixed.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sumSeconds"`
	Buckets    []uint64 `json:"buckets,omitempty"`
}

// Merge folds o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumSeconds += o.SumSeconds
	if len(o.Buckets) > len(s.Buckets) {
		grown := make([]uint64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
}

// BucketBound returns bucket i's upper bound in seconds: 2^i
// nanoseconds. Every observation in buckets 0..i is <= BucketBound(i)
// (durations are integer nanoseconds strictly below 2^i), which is what
// makes these valid Prometheus cumulative le bounds.
func BucketBound(i int) float64 {
	return math.Ldexp(1, i) / 1e9
}
