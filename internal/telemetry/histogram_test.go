package telemetry

import (
	"sync"
	"testing"
	"time"
)

// Bucket placement is bits.Len64 of the nanosecond value: zero lands in
// bucket 0, and v lands in the unique bucket i with 2^(i-1) <= v < 2^i.
func TestHistogramBucketPlacement(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-time.Second, 0}, // clamps
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1023, 10},
		{1024, 11},
		{time.Microsecond, 10},
		{time.Millisecond, 20},
		{time.Second, 30},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		s := h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("Observe(%v): count = %d", c.d, s.Count)
		}
		if len(s.Buckets) != c.bucket+1 || s.Buckets[c.bucket] != 1 {
			t.Fatalf("Observe(%v): buckets = %v, want count in bucket %d", c.d, s.Buckets, c.bucket)
		}
		// Bucket i holds 2^(i-1) <= v < 2^i nanoseconds, so the
		// observation sits strictly below its own bucket's bound and at or
		// above the previous one's.
		sec := c.d.Seconds()
		if sec < 0 {
			sec = 0
		}
		if sec >= BucketBound(c.bucket) {
			t.Fatalf("Observe(%v): %g not below bucket %d bound %g", c.d, sec, c.bucket, BucketBound(c.bucket))
		}
		if c.bucket > 0 && sec < BucketBound(c.bucket-1) {
			t.Fatalf("Observe(%v): %g below bucket %d bound %g", c.d, sec, c.bucket-1, BucketBound(c.bucket-1))
		}
	}
}

func TestHistogramSnapshotAndMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != 2 || sb.Count != 1 {
		t.Fatalf("counts = %d/%d", sa.Count, sb.Count)
	}
	// Merge a shorter-bucketed snapshot into a longer one and vice versa.
	m := sa
	m.Buckets = append([]uint64(nil), sa.Buckets...)
	m.Merge(sb)
	if m.Count != 3 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if got, want := m.SumSeconds, 2e-6+1e-3; got < want*0.999 || got > want*1.001 {
		t.Fatalf("merged sum = %g, want %g", got, want)
	}
	var total uint64
	for _, c := range m.Buckets {
		total += c
	}
	if total != m.Count {
		t.Fatalf("bucket total %d != count %d", total, m.Count)
	}
	m2 := sb
	m2.Buckets = append([]uint64(nil), sb.Buckets...)
	m2.Merge(sa)
	if m2.Count != 3 || len(m2.Buckets) != len(m.Buckets) {
		t.Fatalf("reverse merge = %+v vs %+v", m2, m)
	}
	for i := range m.Buckets {
		if m.Buckets[i] != m2.Buckets[i] {
			t.Fatalf("merge not commutative at bucket %d: %v vs %v", i, m.Buckets, m2.Buckets)
		}
	}
}

// An empty histogram snapshots with no buckets at all (omitempty in
// JSON), and bounds grow strictly monotonically — required for valid
// Prometheus cumulative le labels.
func TestHistogramTrimAndBounds(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(3) // bucket 2
	if s := h.Snapshot(); len(s.Buckets) != 3 {
		t.Fatalf("trimmed buckets = %v, want len 3", s.Buckets)
	}
	for i := 1; i < histBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("bounds not monotone at %d: %g <= %g", i, BucketBound(i), BucketBound(i-1))
		}
	}
	if BucketBound(0) != 1e-9 {
		t.Fatalf("bound(0) = %g, want 1e-9", BucketBound(0))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// Recording must stay allocation-free: Observe runs once per trial
// batch inside the hot loop's accounting.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) & 0xfffff)
	}
	if h.Snapshot().Count == 0 {
		b.Fatal("no observations recorded")
	}
}
