package telemetry

// Prometheus exposition of the recorder's state, dependency-free: the
// text format (version 0.0.4) is a handful of HELP/TYPE comment lines
// and `name{labels} value` samples, which is all a scraper needs. The
// /metrics endpoint is mounted by StartStatusServer next to /status, so
// both cmd/sweep and cmd/sweepd export without extra wiring.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricsContentType is the exposition content type /metrics serves.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// AddMetrics registers an appender that contributes extra families to
// WriteMetrics — how the fabric coordinator exports per-worker lease
// gauges next to the recorder's own counters. Appenders run on the
// scrape goroutine and must not block.
func (r *Recorder) AddMetrics(fn func(io.Writer)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.metricAppenders = append(r.metricAppenders, fn)
	r.mu.Unlock()
}

// WriteMetrics writes the recorder's state in Prometheus text
// exposition format: run counters, cell gauges, fault and simulator-
// cache counters, every latency histogram in the snapshot (fleet
// workers' histograms merged in), then the registered appenders'
// families. A nil recorder writes nothing, which is a valid (empty)
// exposition.
func (r *Recorder) WriteMetrics(w io.Writer) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	writeMetric(w, "sweep_elapsed_seconds", "gauge",
		"Wall-clock seconds since the recorder started.", s.ElapsedSeconds)
	writeMetric(w, "sweep_trials_committed_total", "counter",
		"Trials merged into committed state (deterministic for a fixed spec).", float64(s.TrialsCommitted))
	writeMetric(w, "sweep_trials_run_total", "counter",
		"Trials executed, including adaptive speculation and duplicated leases.", float64(s.TrialsRun))
	writeMetric(w, "sweep_slots_simulated_total", "counter",
		"Simulated slots summed over executed trials.", float64(s.SlotsSimulated))
	writeMetric(w, "sweep_batches_in_flight", "gauge",
		"Trial batches currently executing.", float64(s.BatchesInFlight))
	writeMetric(w, "sweep_cells", "gauge",
		"Matrix cells in the run.", float64(s.CellsTotal))
	writeMetric(w, "sweep_cells_done", "gauge",
		"Matrix cells finished (converged, capped, or fully run).", float64(s.CellsDone))
	writeMetric(w, "sweep_journal_fsyncs_total", "counter",
		"Checkpoint-journal fsyncs (one per journaled record).", float64(s.JournalFsyncs))
	writeHeader(w, "sweep_faults_injected_total", "counter",
		"Faults injected during committed trials, by kind.")
	writeSample(w, "sweep_faults_injected_total", `kind="crash"`, float64(s.FaultCrashes))
	writeSample(w, "sweep_faults_injected_total", `kind="sleep"`, float64(s.FaultSleeps))
	writeSample(w, "sweep_faults_injected_total", `kind="erasure"`, float64(s.FaultErasures))
	writeHeader(w, "sweep_simcache_hits_total", "counter",
		"Simulator-cache hits, by engine list (solo simulators vs batch engines).")
	writeSample(w, "sweep_simcache_hits_total", `engine="solo"`, float64(s.SimCache.SoloHits))
	writeSample(w, "sweep_simcache_hits_total", `engine="batch"`, float64(s.SimCache.BatchHits))
	writeHeader(w, "sweep_simcache_misses_total", "counter",
		"Simulator-cache misses, by engine list.")
	writeSample(w, "sweep_simcache_misses_total", `engine="solo"`, float64(s.SimCache.SoloMisses))
	writeSample(w, "sweep_simcache_misses_total", `engine="batch"`, float64(s.SimCache.BatchMisses))

	keys := make([]string, 0, len(s.Latencies))
	for k := range s.Latencies {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeHistogram(w, "sweep_"+camelToSnake(k)+"_seconds",
			"Latency histogram (power-of-two buckets) for "+k+".", s.Latencies[k])
	}

	r.mu.Lock()
	appenders := append([]func(io.Writer){}, r.metricAppenders...)
	r.mu.Unlock()
	for _, fn := range appenders {
		fn(w)
	}
}

// writeHeader emits a family's HELP and TYPE lines.
func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeSample emits one sample line; labels is the pre-escaped
// `k="v",...` body or "" for none.
func writeSample(w io.Writer, name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(v))
}

// writeMetric emits a single-sample family.
func writeMetric(w io.Writer, name, typ, help string, v float64) {
	writeHeader(w, name, typ, help)
	writeSample(w, name, "", v)
}

// writeHistogram emits one histogram family: cumulative buckets with
// power-of-two le bounds (BucketBound), the +Inf bucket, sum, and count.
func writeHistogram(w io.Writer, name, help string, h HistogramSnapshot) {
	writeHeader(w, name, "histogram", help)
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		writeSample(w, name+"_bucket", `le="`+formatValue(BucketBound(i))+`"`, float64(cum))
	}
	writeSample(w, name+"_bucket", `le="+Inf"`, float64(h.Count))
	writeSample(w, name+"_sum", "", h.SumSeconds)
	writeSample(w, name+"_count", "", float64(h.Count))
}

// formatValue renders a sample value the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// camelToSnake maps a Latencies key to its metric-name segment
// (journalFsync -> journal_fsync).
func camelToSnake(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			b.WriteByte('_')
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the exposition format, for
// appenders (AddMetrics) that label samples with free-form strings such
// as worker names.
func EscapeLabelValue(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}
