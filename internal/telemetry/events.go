package telemetry

// The structured event log is the run's flight recorder: one JSON line
// per lifecycle event (cell start/stop, batch commits, checkpoint
// fsyncs, phase transitions, and — on a fabric coordinator — worker
// join/leave and lease grant/steal/release), appended as it happens so
// a run that dies mid-flight still leaves its history on disk. Events
// are provenance, never part of the deterministic contract: a run with
// -events produces byte-identical reports and deterministic manifest
// sections to one without.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// EventLog appends JSON-lines events to a file. All methods are safe
// for concurrent use and a nil *EventLog no-ops, matching the package's
// nil-Recorder convention. Write errors are sticky and advisory: the
// log goes quiet rather than taking the run down, and Close reports the
// first failure so CLIs can exit non-zero.
type EventLog struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// CreateEventLog opens (truncating) an event log at path.
func CreateEventLog(path string) (*EventLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &EventLog{f: f}, nil
}

// Event appends one line: {"event": kind, "t": <RFC3339Nano UTC>, ...fields}.
// Field keys "event" and "t" are reserved; json.Marshal sorts map keys,
// so a given event kind always serializes its fields in one order.
func (l *EventLog) Event(kind string, fields map[string]any) {
	if l == nil {
		return
	}
	doc := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		doc[k] = v
	}
	doc["event"] = kind
	doc["t"] = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(doc)
	if err != nil {
		l.fail(fmt.Errorf("telemetry: event %q does not marshal: %w", kind, err))
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	// One unbuffered write per event: events fire per batch or rarer, and
	// an immediately-visible line is the point of a flight recorder.
	if _, err := l.f.Write(line); err != nil {
		l.err = err
	}
}

func (l *EventLog) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// Close closes the file and returns the first write error, if any.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.f.Close()
	if l.err != nil {
		return l.err
	}
	return err
}

// SetEventLog attaches an event log to the recorder; Recorder methods
// on the lifecycle path (Phase, CommitTrials, CellDone, JournalFsync)
// emit into it, and subsystems add their own kinds through Event.
// Attach before the run starts and Close after the recorder's last use.
func (r *Recorder) SetEventLog(l *EventLog) {
	if r == nil {
		return
	}
	r.events.Store(l)
}

// Event emits one event if an event log is attached (a cheap nil check
// otherwise, so instrumentation sites need no gating).
func (r *Recorder) Event(kind string, fields map[string]any) {
	if r == nil {
		return
	}
	r.events.Load().Event(kind, fields)
}

// eventsOn reports whether an event log is attached, for emission sites
// that would otherwise build a fields map for nobody.
func (r *Recorder) eventsOn() bool {
	return r != nil && r.events.Load() != nil
}
