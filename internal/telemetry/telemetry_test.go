package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil recorder (telemetry disabled) must no-op on every hook — the
// instrumentation sites call them unconditionally.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.StartCells([]string{"a"})
	r.TraceMeasures([]string{"slots"})
	r.Shards(4)
	if sh := r.Shard(0); sh != nil {
		t.Fatalf("nil recorder returned shard %v", sh)
	}
	var sh *Shard
	sh.BatchStart()
	sh.BatchDone(0, 10, 100, time.Millisecond)
	sh.SetCache(CacheCounts{SoloHits: 1})
	r.CommitTrials(0, 10)
	r.CellDone(0, "done")
	r.Trace(0, 0, 10, []float64{0.5})
	r.JournalFsync(time.Millisecond)
	r.LeaseRoundTrip(time.Millisecond)
	r.Add(3, 30)
	r.Phase("x")
	r.SetEventLog(nil)
	r.Event("cell-start", map[string]any{"cell": "a"})
	r.WorkerSeen("w", "addr", "v1")
	r.WorkerShard("w", Snapshot{TrialsRun: 1})
	r.WorkerGone("w")
	if ws := r.FleetWorkers(); ws != nil {
		t.Fatalf("nil fleet = %v", ws)
	}
	r.AddMetrics(func(io.Writer) {})
	r.WriteMetrics(io.Discard)
	var h *Histogram
	h.Observe(time.Millisecond)
	var lg *EventLog
	lg.Event("x", nil)
	if err := lg.Close(); err != nil {
		t.Fatalf("nil event log close = %v", err)
	}
	if s := r.Snapshot(); s.TrialsRun != 0 || s.TrialsCommitted != 0 || len(s.Latencies) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if cs := r.Cells(); cs != nil {
		t.Fatalf("nil cells = %v", cs)
	}
	stop := r.StartProgress(io.Discard, time.Millisecond, 0, false)
	stop()
	stop() // idempotent
}

func TestShardMergeAndCells(t *testing.T) {
	r := New()
	r.StartCells([]string{"cell-a", "cell-b"})
	r.Shards(3)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := r.Shard(w)
			for b := 0; b < 5; b++ {
				sh.BatchStart()
				sh.BatchDone(w%2, 10, 1000, time.Millisecond)
			}
			sh.SetCache(CacheCounts{SoloHits: 7, SoloMisses: 1, BatchHits: 2, BatchMisses: 3})
			r.CommitTrials(w%2, 50)
		}(w)
	}
	wg.Wait()
	r.CellDone(0, "done")
	r.CellDone(0, "again") // second reason must not double-count
	s := r.Snapshot()
	if s.TrialsRun != 150 || s.TrialsCommitted != 150 {
		t.Fatalf("trials run/committed = %d/%d, want 150/150", s.TrialsRun, s.TrialsCommitted)
	}
	if s.SlotsSimulated != 15000 {
		t.Fatalf("slots = %d, want 15000", s.SlotsSimulated)
	}
	if s.BatchesInFlight != 0 {
		t.Fatalf("inflight = %d, want 0", s.BatchesInFlight)
	}
	if want := (CacheCounts{SoloHits: 21, SoloMisses: 3, BatchHits: 6, BatchMisses: 9}); s.SimCache != want {
		t.Fatalf("cache = %+v, want %+v", s.SimCache, want)
	}
	if s.CellsTotal != 2 || s.CellsDone != 1 {
		t.Fatalf("cells %d/%d, want 1/2", s.CellsDone, s.CellsTotal)
	}
	cells := r.Cells()
	// Workers 0 and 2 hit cell 0 (2x50 commits), worker 1 hit cell 1.
	if cells[0].Trials != 100 || cells[1].Trials != 50 {
		t.Fatalf("cell trials = %d/%d, want 100/50", cells[0].Trials, cells[1].Trials)
	}
	if cells[0].Stop != "done" || cells[1].Stop != "" {
		t.Fatalf("stops = %q/%q", cells[0].Stop, cells[1].Stop)
	}
	if cells[0].WallSeconds <= 0 {
		t.Fatalf("cell 0 wall = %v, want > 0", cells[0].WallSeconds)
	}
}

// Shard out-of-range and unknown cells must be safe (the recorder is
// advisory; a stray index must never panic a run).
func TestShardBounds(t *testing.T) {
	r := New()
	r.StartCells([]string{"only"})
	r.Shards(1)
	if sh := r.Shard(5); sh != nil {
		t.Fatal("out-of-range shard not nil")
	}
	sh := r.Shard(0)
	sh.BatchStart()
	sh.BatchDone(7, 1, 1, 0) // cell 7 does not exist
	r.CommitTrials(-1, 5)
	r.CellDone(99, "done")
	r.Trace(99, 0, 1, nil)
	if s := r.Snapshot(); s.TrialsCommitted != 5 || s.TrialsRun != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// Non-finite relative CI values must serialize as the -1 sentinel so a
// trace is always valid JSON.
func TestTraceSanitizesNonFinite(t *testing.T) {
	r := New()
	r.StartCells([]string{"c"})
	nan := 0.0 / zero
	inf := 1.0 / zero
	r.Trace(0, 0, 10, []float64{nan, inf, -inf, 0.25})
	tr := r.Cells()[0].Trace
	if len(tr) != 1 {
		t.Fatalf("trace len = %d", len(tr))
	}
	want := []float64{-1, -1, -1, 0.25}
	for i, x := range tr[0].RelCI {
		if x != want[i] {
			t.Fatalf("relCI[%d] = %v, want %v", i, x, want[i])
		}
	}
	if _, err := json.Marshal(r.StatusDoc()); err != nil {
		t.Fatalf("status doc not marshalable: %v", err)
	}
}

// zero defeats constant folding (1.0/0 is a compile error; 1.0/zero is
// runtime +Inf).
var zero = 0.0

func TestPhasesAndManifest(t *testing.T) {
	r := New()
	r.StartCells([]string{"a", "b"})
	r.TraceMeasures([]string{"slots"})
	r.Phase("resolve")
	r.Phase("trials")
	r.CommitTrials(0, 10)
	r.Trace(0, 0, 10, []float64{0.5})
	r.CellDone(0, "ci")
	m := r.BuildManifest("test", map[string]int{"n": 8}, map[string]int{"max": 100}, 4, 16)
	if m.Workers != 4 || m.BatchW != 16 {
		t.Fatalf("workers/batchw = %d/%d", m.Workers, m.BatchW)
	}
	if len(m.Phases) != 2 || m.Phases[0].Name != "resolve" || m.Phases[1].Name != "trials" {
		t.Fatalf("phases = %+v", m.Phases)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Manifest
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if round.Snapshot.TrialsCommitted != 10 {
		t.Fatalf("round-trip committed = %d", round.Snapshot.TrialsCommitted)
	}
}

// DeterministicJSON must exclude every timing and scheduling-dependent
// counter: two manifests differing only in those must produce identical
// bytes.
func TestDeterministicJSONExcludesTimings(t *testing.T) {
	build := func(extraRun int, wall time.Duration) []byte {
		r := New()
		r.StartCells([]string{"a"})
		r.TraceMeasures([]string{"slots"})
		r.Shards(2)
		sh := r.Shard(0)
		sh.BatchStart()
		sh.BatchDone(0, 10+extraRun, uint64(100*(extraRun+1)), wall)
		sh.SetCache(CacheCounts{SoloHits: uint64(extraRun)})
		r.JournalFsync(wall)
		r.CommitTrials(0, 10)
		r.Trace(0, 0, 10, []float64{0.125})
		r.CellDone(0, "ci")
		m := r.BuildManifest("test", map[string]int{"n": 8}, nil, 2+extraRun, 1)
		b, err := m.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := build(0, time.Millisecond)
	b := build(7, time.Hour)
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic JSON differs:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "wallSeconds") || strings.Contains(string(a), "elapsed") {
		t.Fatalf("deterministic JSON leaks timings:\n%s", a)
	}
}

func TestStatusServer(t *testing.T) {
	r := New()
	r.StartCells([]string{"clique-8/No-CD/auto"})
	r.CommitTrials(0, 42)
	addr, shutdown, err := StartStatusServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	get := func(path string) *http.Response {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	resp := get("/status")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status = %d", resp.StatusCode)
	}
	var doc Status
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if doc.Snapshot.TrialsCommitted != 42 || len(doc.Cells) != 1 {
		t.Fatalf("status doc = %+v", doc)
	}
	for _, path := range []string{"/debug/pprof/", "/"} {
		resp := get(path)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}
	resp = get("/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/nope = %d, want 404", resp.StatusCode)
	}
}

func TestStartProgressReportsAndStops(t *testing.T) {
	r := New()
	r.StartCells([]string{"a"})
	r.CommitTrials(0, 500)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := r.StartProgress(w, 5*time.Millisecond, 1000, true)
	time.Sleep(20 * time.Millisecond)
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "500/<=1000 trials") {
		t.Fatalf("progress output %q lacks trial counts", out)
	}
	if !strings.Contains(out, "ETA <=") {
		t.Fatalf("progress output %q lacks upper-bound ETA", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final progress line not newline-terminated: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
