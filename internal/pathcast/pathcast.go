// Package pathcast implements Algorithm 1 of Section 8: Broadcast on an
// n-vertex path with worst-case running time 2n and expected per-vertex
// energy O(log n) (Theorem 21).
//
// Each vertex samples a blocking time B = 2^b (P[b=i] = 2^-i, capped at
// n), announces "next message after B-1 timesteps" downstream at time 1,
// sleeps between explicitly scheduled listen alarms, and from time B on
// forwards every received message with one slot of delay. Vertices with a
// large blocking time shield their downstream from upstream
// synchronization traffic; the geometric distribution balances that
// shielding against the delay it adds to the payload.
//
// Vertices do not know their position or the orientation of the path: as
// the paper prescribes, each vertex runs the oriented algorithm twice in
// parallel, once with each neighbor in the upstream role, in the
// full-duplex LOCAL model (which by Theorem 3 also yields CD and No-CD
// algorithms with constant-factor overhead, since Delta = 2).
package pathcast

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Kind distinguishes the two message types of Algorithm 1.
type Kind uint8

// Message kinds: the payload being broadcast, and the "next message after
// i timesteps" synchronization message.
const (
	KindPayload Kind = iota
	KindSync
)

// Msg is one path-protocol message. From/To identify the oriented
// instance it belongs to (To == -1 addresses all neighbors, used by the
// source's initial payload transmission).
type Msg struct {
	From int
	To   int
	Kind Kind
	Wait uint64 // KindSync: the announced gap to the next message
	Body any    // KindPayload: the broadcast content
}

// DeviceResult is one vertex's view after the protocol.
type DeviceResult struct {
	// Informed reports whether the vertex received (or originated) the
	// payload.
	Informed bool
	// ReceivedAt is the slot of first payload receipt (0 for the source).
	ReceivedAt uint64
	// Body is the payload.
	Body any
	// BlockingTimes are the sampled B values of the vertex's oriented
	// instances (for analysis).
	BlockingTimes []uint64
}

// instance is one oriented execution of Algorithm 1 at a vertex.
// up == -1 means no upstream neighbor (the instance only emits timing
// messages); down == -1 means no downstream neighbor (the instance only
// receives).
type instance struct {
	up, down int
	b        uint64 // blocking time B (0 when the instance never sends)
	bFired   bool
	listen   uint64 // next listen-alarm slot; 0 = none scheduled
	last     *Msg   // most recently received message
	fwd      *Msg   // message scheduled for forwarding
	fwdAt    uint64
	payload  *Msg // received payload, if any
	payAt    uint64
	done     bool
}

// Params configures a run.
type Params struct {
	// Horizon is the hard stop slot; 0 selects 2*NextPow2(n)+2, just past
	// Theorem 21's 2n worst case.
	Horizon uint64
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// DefaultHorizon returns the standard hard-stop slot for an n-vertex path.
func DefaultHorizon(n int) uint64 {
	return 2*uint64(rng.NextPow2(n)) + 2
}

// pathProc is the resumable step machine behind Program. It mirrors
// Algorithm 1 exactly as the historical blocking program did — the
// action schedule, the per-device blocking-time draws (in oriented-
// instance order), and the rule that feedback is only processed for
// slots with a listen alarm are all identical — but the scheduler steps
// it inline, so the path algorithm's long idle stretches cost neither
// virtual time nor goroutine parks.
type pathProc struct {
	p         Params
	neighbors []int
	isSource  bool
	body      any
	out       *DeviceResult

	inited     bool
	self       int
	horizon    uint64
	insts      []*instance
	pendT      uint64 // slot of the in-flight action
	pendListen bool   // the in-flight action carries a listen alarm
}

// Proc returns the device's inline step proc for one vertex. neighbors
// is the vertex's adjacency (1 or 2 entries on a path); isSource marks
// the broadcaster holding body. Procs are single-use.
func Proc(p Params, neighbors []int, isSource bool, body any, out *DeviceResult) radio.Proc {
	return &pathProc{p: p, neighbors: neighbors, isSource: isSource, body: body, out: out}
}

func (d *pathProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if !d.inited {
		return d.start(ch)
	}
	if d.isSource {
		// The single slot-1 payload transmission has resolved; quit.
		return radio.Halt()
	}
	if d.pendListen {
		process(d.self, d.insts, fb, d.pendT, d.horizon)
	}
	t, any := nextAction(d.insts, d.horizon)
	if !any {
		d.finish()
		return radio.Halt()
	}
	// Decide transmissions for slot t before hearing anything in it
	// (synchronous radio: content cannot depend on the same slot's
	// receptions).
	send := collectSends(d.self, d.insts, t, d.horizon)
	listen := false
	for _, in := range d.insts {
		if !in.done && in.up >= 0 && in.listen == t {
			listen = true
		}
	}
	d.pendT = t
	switch {
	case len(send) > 0 && listen:
		d.pendListen = true
		return radio.TransmitListen(t, send)
	case len(send) > 0:
		d.pendListen = false
		return radio.Transmit(t, send)
	default:
		d.pendListen = listen
		return radio.Listen(t)
	}
}

// start initializes the device on its first step: it draws the blocking
// times and emits the slot-1 action (the source's payload transmission,
// or the synchronization announce plus listen of line 5 / line 8).
func (d *pathProc) start(ch radio.Channel) radio.Action {
	d.inited = true
	d.self = ch.Index()
	d.horizon = d.p.Horizon
	if d.horizon == 0 {
		d.horizon = DefaultHorizon(ch.N())
	}
	if d.isSource {
		// Line 1: the source transmits the payload at slot 1 and quits.
		// A single transmission reaches all neighbors.
		d.out.Informed = true
		d.out.Body = d.body
		return radio.Transmit(1, []Msg{{From: d.self, To: -1, Kind: KindPayload, Body: d.body}})
	}
	n2 := rng.NextPow2(ch.N())
	// Build the oriented instances: one per (up, down) role pair.
	switch len(d.neighbors) {
	case 1:
		d.insts = append(d.insts,
			&instance{up: d.neighbors[0], down: -1},
			&instance{up: -1, down: d.neighbors[0]},
		)
	case 2:
		d.insts = append(d.insts,
			&instance{up: d.neighbors[0], down: d.neighbors[1]},
			&instance{up: d.neighbors[1], down: d.neighbors[0]},
		)
	default:
		panic(fmt.Sprintf("pathcast: vertex %d has %d neighbors; not a path",
			d.self, len(d.neighbors)))
	}
	for _, in := range d.insts {
		if in.down >= 0 {
			in.b = uint64(rng.BlockingTime(ch.Rand(), n2))
			d.out.BlockingTimes = append(d.out.BlockingTimes, in.b)
		} else {
			in.done = false // pure receiver: no B needed
		}
	}
	// Slot 1: everyone announces its blocking time downstream and
	// listens (line 5 + line 8's t=1 case).
	var batch []Msg
	for _, in := range d.insts {
		if in.down >= 0 {
			batch = append(batch, Msg{From: d.self, To: in.down, Kind: KindSync, Wait: in.b - 1})
		}
	}
	d.pendT, d.pendListen = 1, true
	return radio.TransmitListen(1, batch)
}

func (d *pathProc) finish() {
	for _, in := range d.insts {
		if in.payload != nil {
			d.out.Informed = true
			d.out.Body = in.payload.Body
			if d.out.ReceivedAt == 0 || in.payAt < d.out.ReceivedAt {
				d.out.ReceivedAt = in.payAt
			}
		}
	}
}

// nextAction returns the earliest pending slot across instances.
func nextAction(insts []*instance, horizon uint64) (uint64, bool) {
	best := uint64(0)
	found := false
	consider := func(s uint64) {
		if s == 0 || s > horizon {
			return
		}
		if !found || s < best {
			best, found = s, true
		}
	}
	for _, in := range insts {
		if in.done {
			continue
		}
		if in.up >= 0 {
			consider(in.listen)
		}
		if in.down >= 0 && !in.bFired {
			consider(in.b)
		}
		if in.fwd != nil {
			consider(in.fwdAt)
		}
	}
	return best, found
}

// collectSends gathers every message due at slot t and advances the
// instances' send state.
func collectSends(self int, insts []*instance, t, horizon uint64) []Msg {
	var send []Msg
	for _, in := range insts {
		if in.done {
			continue
		}
		// Scheduled forward (forwarding mode, line 13).
		if in.fwd != nil && in.fwdAt == t {
			m := *in.fwd
			m.From, m.To = self, in.down
			send = append(send, m)
			in.fwd = nil
			if m.Kind == KindPayload {
				in.done = true // line 14-15
				continue
			}
		}
		// SendAlarm at t = B (lines 16-21).
		if in.down >= 0 && !in.bFired && in.b == t {
			in.bFired = true
			switch {
			case in.payload != nil && in.payAt < in.b:
				// Payload arrived strictly before B: relay it now, quit.
				m := *in.payload
				m.From, m.To = self, in.down
				send = append(send, m)
				in.done = true
			case in.up < 0:
				// No upstream: nothing will ever arrive; tell downstream
				// to stop expecting traffic from this direction.
				send = append(send, Msg{From: self, To: in.down, Kind: KindSync,
					Wait: horizon})
				in.done = true
			default:
				// Announce when the next forwarded message will appear:
				// the message received at the next ListenAlarm A is
				// forwarded at A+1, i.e. A+1-B slots from now. An alarm
				// ringing at B itself yields Wait = 1.
				a := in.listen
				if a == 0 || a > horizon {
					a = horizon
				}
				if a < t {
					a = t
				}
				send = append(send, Msg{From: self, To: in.down, Kind: KindSync,
					Wait: a + 1 - t})
			}
		}
	}
	return send
}

// process handles the receptions of slot t for every instance listening.
func process(self int, insts []*instance, fb radio.Feedback, t, horizon uint64) {
	if fb.Status != radio.Received {
		// Silence: no upstream traffic (e.g. a dead-end neighbor that
		// never spoke). Clear the alarm that just fired.
		for _, in := range insts {
			if !in.done && in.listen == t {
				in.listen = 0
			}
		}
		return
	}
	for _, in := range insts {
		if in.done || in.up < 0 {
			continue
		}
		listening := in.listen == t || t == 1
		if !listening {
			continue
		}
		if in.listen == t {
			in.listen = 0
		}
		for _, raw := range fb.Payloads {
			msgs, ok := raw.([]Msg)
			if !ok {
				continue
			}
			for i := range msgs {
				m := msgs[i]
				if m.From != in.up || (m.To != self && m.To != -1) {
					continue
				}
				in.last = &m
				switch m.Kind {
				case KindSync:
					next := t + m.Wait
					if next <= horizon {
						in.listen = next // line 10-11
					}
				case KindPayload:
					if in.payload == nil {
						in.payload = &m
						in.payAt = t
					}
				}
				if t >= in.b && in.down >= 0 {
					// Forwarding mode (lines 12-13): relay at t+1.
					in.fwd = &m
					in.fwdAt = t + 1
				}
				if in.down < 0 && m.Kind == KindPayload {
					// Pure receiver at the path end: job done.
					in.done = true
				}
			}
		}
	}
}

// Outcome aggregates a whole-path run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
}

// AllInformed reports whether every vertex holds the payload.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// MaxReceiveSlot returns the latest payload-delivery slot.
func (o *Outcome) MaxReceiveSlot() uint64 {
	m := uint64(0)
	for _, d := range o.Devices {
		if d.ReceivedAt > m {
			m = d.ReceivedAt
		}
	}
	return m
}

// Validate checks that g is a path and source lies on it — the exact
// precondition Broadcast enforces, exported so callers that build
// populations themselves (core's batch planner) reject the same inputs
// with the same errors.
func Validate(g *graph.Graph, source int) error {
	n := g.N()
	if n == 0 {
		return fmt.Errorf("pathcast: empty graph")
	}
	ends := 0
	for v := 0; v < n; v++ {
		switch g.Degree(v) {
		case 0:
			if n > 1 {
				return fmt.Errorf("pathcast: vertex %d isolated", v)
			}
		case 1:
			ends++
		case 2:
		default:
			return fmt.Errorf("pathcast: vertex %d has degree %d; not a path", v, g.Degree(v))
		}
	}
	if n > 1 && (ends != 2 || g.M() != n-1 || !g.IsConnected()) {
		return fmt.Errorf("pathcast: graph %q is not a path", g.Name())
	}
	if source < 0 || source >= n {
		return fmt.Errorf("pathcast: source %d out of range", source)
	}
	return nil
}

// Broadcast runs Algorithm 1 on the given path graph from source.
// The graph must be a path (every vertex of degree at most 2, connected,
// acyclic); Broadcast validates this.
func Broadcast(g *graph.Graph, source int, body any, p Params, seed uint64, trace func(radio.Event)) (*Outcome, error) {
	n := g.N()
	if err := Validate(g, source); err != nil {
		return nil, err
	}
	devs := make([]DeviceResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		pop[v].Proc = Proc(p, g.Neighbors(v), v == source, body, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.Local, Seed: seed, Trace: trace, Sims: p.Sims}, pop)
	if err != nil {
		return nil, err
	}
	return &Outcome{Result: res, Devices: devs}, nil
}
