package pathcast

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

func TestBroadcastInformsAll(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16, 33, 64} {
		for seed := uint64(0); seed < 5; seed++ {
			g := graph.Path(n)
			out, err := Broadcast(g, 0, "payload", Params{}, seed, nil)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if !out.AllInformed() {
				for v, d := range out.Devices {
					if !d.Informed {
						t.Fatalf("n=%d seed=%d: vertex %d not informed", n, seed, v)
					}
				}
			}
			for v, d := range out.Devices {
				if d.Body != "payload" {
					t.Fatalf("n=%d seed=%d: vertex %d body %v", n, seed, v, d.Body)
				}
			}
		}
	}
}

func TestBroadcastFromMiddle(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.Path(21)
		out, err := Broadcast(g, 10, 42, Params{}, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllInformed() {
			t.Fatalf("seed %d: middle-source broadcast incomplete", seed)
		}
	}
}

func TestBroadcastFromFarEnd(t *testing.T) {
	g := graph.Path(16)
	out, err := Broadcast(g, 15, "m", Params{}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Fatal("far-end-source broadcast incomplete")
	}
}

func TestWorstCaseTimeBound(t *testing.T) {
	// Theorem 21: worst-case running time 2n (with n rounded to a power
	// of two). Check delivery slots across many seeds.
	for _, n := range []int{8, 16, 31, 64} {
		bound := 2 * uint64(rng.NextPow2(n))
		for seed := uint64(0); seed < 10; seed++ {
			g := graph.Path(n)
			out, err := Broadcast(g, 0, "m", Params{}, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.MaxReceiveSlot(); got > bound {
				t.Errorf("n=%d seed=%d: delivery at slot %d > 2n'=%d", n, seed, got, bound)
			}
		}
	}
}

func TestExpectedEnergyLogarithmic(t *testing.T) {
	// Theorem 21: expected per-vertex energy O(log n). Compare mean
	// energy at n=16 and n=256: growth must be way below the 16x of a
	// linear-energy protocol.
	meanEnergy := func(n int) float64 {
		total := 0
		const runs = 10
		for seed := uint64(0); seed < runs; seed++ {
			g := graph.Path(n)
			out, err := Broadcast(g, 0, "m", Params{}, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !out.AllInformed() {
				t.Fatalf("n=%d: incomplete", n)
			}
			total += out.Result.TotalEnergy() / n
		}
		return float64(total) / runs
	}
	e16 := meanEnergy(16)
	e256 := meanEnergy(256)
	if ratio := e256 / e16; ratio > 4 {
		t.Errorf("mean energy grew %.1fx from n=16 (%.1f) to n=256 (%.1f); want ~2x (log growth)",
			ratio, e16, e256)
	}
}

func TestEnergyFarBelowTime(t *testing.T) {
	// The whole point: devices sleep through nearly the entire run.
	g := graph.Path(128)
	out, err := Broadcast(g, 0, "m", Params{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Fatal("incomplete")
	}
	if maxE := out.Result.MaxEnergy(); uint64(maxE) > out.Result.Slots/2 {
		t.Errorf("max energy %d vs %d slots: not energy-efficient", maxE, out.Result.Slots)
	}
}

func TestBlockingTimesRecorded(t *testing.T) {
	g := graph.Path(8)
	out, err := Broadcast(g, 0, "m", Params{}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range out.Devices {
		if v == 0 {
			continue // source has no instances
		}
		want := 1 // end vertex: one sending instance
		if g.Degree(v) == 2 {
			want = 2
		}
		if len(d.BlockingTimes) != want {
			t.Errorf("vertex %d: %d blocking times, want %d", v, len(d.BlockingTimes), want)
		}
		for _, b := range d.BlockingTimes {
			if b < 2 || b > uint64(rng.NextPow2(8)) {
				t.Errorf("vertex %d: blocking time %d out of range", v, b)
			}
		}
	}
}

func TestRejectsNonPaths(t *testing.T) {
	if _, err := Broadcast(graph.Cycle(6), 0, nil, Params{}, 0, nil); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := Broadcast(graph.Star(5), 0, nil, Params{}, 0, nil); err == nil {
		t.Error("star accepted")
	}
	disconnected := graph.New(4)
	if err := disconnected.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := disconnected.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Broadcast(disconnected, 0, nil, Params{}, 0, nil); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := Broadcast(graph.Path(4), 9, nil, Params{}, 0, nil); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := Broadcast(graph.New(0), 0, nil, Params{}, 0, nil); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.New(1)
	out, err := Broadcast(g, 0, "solo", Params{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Error("lone source not informed")
	}
}

func TestTraceProducesTimeline(t *testing.T) {
	g := graph.Path(8)
	var events []radio.Event
	out, err := Broadcast(g, 0, "m", Params{}, 4, func(ev radio.Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Fatal("incomplete")
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	// Slot 1 must contain transmissions from every non-source vertex plus
	// the source payload.
	tx1 := map[int]bool{}
	for _, ev := range events {
		if ev.Slot == 1 && ev.Kind == radio.EventTransmit {
			tx1[ev.Dev] = true
		}
	}
	if len(tx1) != 8 {
		t.Errorf("slot-1 transmitters = %d, want all 8", len(tx1))
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := graph.Path(32)
	a, err := Broadcast(g, 0, "m", Params{}, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, 0, "m", Params{}, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Slots != b.Result.Slots || a.Result.Events != b.Result.Events {
		t.Error("same seed diverged")
	}
	if a.MaxReceiveSlot() != b.MaxReceiveSlot() {
		t.Error("delivery schedule diverged")
	}
}

func TestMessageAdvancesOneHopPerSlotWhenUnblocked(t *testing.T) {
	// With all blocking times at their minimum (2), the payload reaches
	// vertex i no earlier than slot i (it cannot teleport) — a basic
	// sanity check on slot accounting.
	g := graph.Path(12)
	out, err := Broadcast(g, 0, "m", Params{}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 12; v++ {
		if got := out.Devices[v].ReceivedAt; got != 0 && got < uint64(v) {
			t.Errorf("vertex %d received at slot %d < distance %d", v, got, v)
		}
	}
}

func TestHorizonOverride(t *testing.T) {
	// A tiny horizon cannot crash the protocol; it only truncates it.
	g := graph.Path(16)
	out, err := Broadcast(g, 0, "m", Params{Horizon: 4}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Close vertices may be informed; far ones cannot be.
	if out.Devices[15].Informed {
		t.Error("vertex 15 informed within 4 slots")
	}
}
