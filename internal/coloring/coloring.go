// Package coloring implements Section 3 of the paper: the Learn-degree
// protocol (Lemma 4), the distributed Two-Hop-Coloring of G+G^2
// (Lemmas 5-6), and the Theorem 3 simulation of LOCAL algorithms in the
// No-CD model.
//
// Given a coloring where all vertices within distance two receive
// distinct colors, a LOCAL round is simulated by a frame of k = 2*Delta^2
// slots: a vertex transmits only in the slot of its own color and listens
// only in the slots of its neighbors' colors, which eliminates collisions
// entirely. The simulation multiplies time by k and energy by at most
// Delta+1, which is what makes it attractive exactly when Delta = O(1)
// (Corollary 13).
package coloring

import (
	"math/rand/v2"
	"sort"

	"repro/internal/radio"
	"repro/internal/rng"
)

// Params sizes the setup protocols; all fields are global knowledge.
type Params struct {
	// N and Delta are the network parameters.
	N, Delta int
	// LearnSlots is the length of one Learn-degree-style exchange window.
	LearnSlots int
	// ColorIters is the number of Two-Hop-Coloring iterations.
	ColorIters int
	// StepSlots is the length of each iteration's gossip step.
	StepSlots int
}

// NewParams returns w.h.p. parameters for an n-vertex, degree-Delta
// network.
func NewParams(n, delta int) Params {
	if delta < 1 {
		delta = 1
	}
	logN := rng.Log2Ceil(n) + 1
	logD := rng.Log2Ceil(delta) + 1
	return Params{
		N:          n,
		Delta:      delta,
		LearnSlots: 8*delta*logN + 8,
		ColorIters: 4*logN + 4,
		StepSlots:  16*delta*logD + 16,
	}
}

// Colors returns the palette size k = 2*Delta^2 (at least 2).
func (p Params) Colors() int {
	k := 2 * p.Delta * p.Delta
	if k < 2 {
		k = 2
	}
	return k
}

// SetupSlots returns the slot cost of the full setup (Learn-degree, the
// coloring iterations, and the final color-exchange pass).
func (p Params) SetupSlots() uint64 {
	return uint64(p.LearnSlots) + uint64(p.ColorIters)*uint64(p.StepSlots) + uint64(p.LearnSlots)
}

// SimSlots returns the physical-slot cost of simulating the given number
// of virtual LOCAL slots after setup.
func (p Params) SimSlots(virtual uint64) uint64 {
	return virtual * uint64(p.Colors())
}

// TotalSlots returns setup plus simulation cost.
func (p Params) TotalSlots(virtual uint64) uint64 {
	return p.SetupSlots() + p.SimSlots(virtual)
}

// learnMsg is the payload of Learn-degree and color-exchange slots.
type learnMsg struct {
	id    int
	color int
}

// LearnDegreeCont emits the Lemma 4 protocol in the window
// [start, start+LearnSlots): in each slot a device transmits its ID with
// probability 1/(Delta+1) and listens otherwise (the +1 keeps the
// Delta = 1 case from transmitting always). When the window ends, *out
// holds the IDs of all neighbors heard (w.h.p. all of them), sorted,
// and k resumes.
func LearnDegreeCont(start uint64, p Params, out *[]int, k radio.Cont) radio.Cont {
	seen := make(map[int]bool)
	var slotC func(i int) radio.Cont
	slotC = func(i int) radio.Cont {
		if i == p.LearnSlots {
			return radio.Do(func() {
				ids := make([]int, 0, len(seen))
				for id := range seen {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				*out = ids
			}, k)
		}
		slot := start + uint64(i)
		next := radio.Eval(func() radio.Cont { return slotC(i + 1) })
		return radio.EvalCh(func(ch radio.Channel) radio.Cont {
			if rng.Bernoulli(ch.Rand(), 1/float64(p.Delta+1)) {
				return radio.Then(radio.Transmit(slot, learnMsg{id: ch.Index()}), next)
			}
			return radio.Recv(slot, func(fb radio.Feedback) radio.Cont {
				if fb.Status == radio.Received {
					if m, ok := fb.Payload.(learnMsg); ok {
						seen[m.id] = true
					}
				}
				return next
			})
		})
	}
	return slotC(0)
}

// colorMsg is the gossip payload of Two-Hop-Coloring's step 3.
type colorMsg struct {
	id    int
	color int         // proposed or fixed color
	list  map[int]int // sender's view of its neighbors' colors (its L)
}

// ColoringResult is a device's outcome of Two-Hop-Coloring.
type ColoringResult struct {
	// Color is the device's color in {1..k}; 0 when never fixed
	// (probability 1/poly(n)).
	Color int
	// NeighborColors maps neighbor ID to its final color.
	NeighborColors map[int]int
}

// TwoHopColoringCont emits the Section 3.1 algorithm in the window
// [start, start+ColorIters*StepSlots+LearnSlots). *neighbors must hold
// the Learn-degree output when the window starts. When the window ends,
// *out is a proper coloring of G+G^2 w.h.p. (within every distance-2
// neighborhood all colors are distinct) and k resumes.
//
// One deviation from the paper's prose, for airtight safety: the color
// lists L(v) (and the cached copies of neighbors' lists) are reset at the
// start of every iteration, so a vertex only fixes its color based on
// colors announced in the same iteration. The paper's step 4 already
// rejects undefined entries; the reset makes staleness impossible rather
// than just unlikely.
func TwoHopColoringCont(start uint64, p Params, neighbors *[]int, out *ColoringResult, k radio.Cont) radio.Cont {
	kColors := p.Colors()
	color := 0
	fixed := false
	finalList := make(map[int]int)
	var list map[int]int           // neighbor id -> announced color
	var copies map[int]map[int]int // neighbor id -> its announced list

	finish := radio.Do(func() {
		if !fixed {
			color = 0
		}
		*out = ColoringResult{Color: color, NeighborColors: finalList}
	}, k)

	// Final color-exchange pass so every device leaves with fresh
	// neighbor colors (needed for the simulation's listen schedule).
	exchange := func(t uint64) radio.Cont {
		var slotC func(i int) radio.Cont
		slotC = func(i int) radio.Cont {
			if i == p.LearnSlots {
				return finish
			}
			slot := t + uint64(i)
			next := radio.Eval(func() radio.Cont { return slotC(i + 1) })
			return radio.EvalCh(func(ch radio.Channel) radio.Cont {
				if rng.Bernoulli(ch.Rand(), 1/float64(p.Delta+1)) {
					return radio.Then(radio.Transmit(slot, learnMsg{id: ch.Index(), color: color}), next)
				}
				return radio.Recv(slot, func(fb radio.Feedback) radio.Cont {
					if fb.Status == radio.Received {
						if m, ok := fb.Payload.(learnMsg); ok {
							finalList[m.id] = m.color
						}
					}
					return next
				})
			})
		}
		return slotC(0)
	}

	var iterC func(iter int, t uint64) radio.Cont
	iterC = func(iter int, t uint64) radio.Cont {
		if iter == p.ColorIters {
			return exchange(t)
		}
		post := radio.Do(func() {
			if fixed {
				for id, c := range list {
					finalList[id] = c
				}
				return
			}
			if acceptColor(color, *neighbors, list, copies) {
				fixed = true
				for id, c := range list {
					finalList[id] = c
				}
			}
		}, radio.Eval(func() radio.Cont { return iterC(iter+1, t+uint64(p.StepSlots)) }))
		var slotC func(i int) radio.Cont
		slotC = func(i int) radio.Cont {
			if i == p.StepSlots {
				return post
			}
			slot := t + uint64(i)
			next := radio.Eval(func() radio.Cont { return slotC(i + 1) })
			return radio.EvalCh(func(ch radio.Channel) radio.Cont {
				if rng.Bernoulli(ch.Rand(), 1/float64(p.Delta+1)) {
					return radio.Then(radio.Transmit(slot,
						colorMsg{id: ch.Index(), color: color, list: cloneList(list)}), next)
				}
				return radio.Recv(slot, func(fb radio.Feedback) radio.Cont {
					if fb.Status == radio.Received {
						if m, ok := fb.Payload.(colorMsg); ok {
							list[m.id] = m.color
							copies[m.id] = m.list
						}
					}
					return next
				})
			})
		}
		return radio.EvalCh(func(ch radio.Channel) radio.Cont {
			if !fixed {
				color = 1 + ch.Rand().IntN(kColors)
			}
			// Fresh views for this iteration.
			list = make(map[int]int)
			copies = make(map[int]map[int]int)
			return slotC(0)
		})
	}
	return iterC(0, start)
}

// acceptColor applies the paper's step 4: reject when (i) some entry of
// the own list is undefined or equals the candidate, or (ii) some
// neighbor's list is missing, has undefined entries, or contains the
// candidate at least twice.
func acceptColor(color int, neighbors []int, list map[int]int, copies map[int]map[int]int) bool {
	for _, u := range neighbors {
		c, ok := list[u]
		if !ok || c == color {
			return false // rule (i)
		}
	}
	for _, u := range neighbors {
		lw, ok := copies[u]
		if !ok {
			return false // rule (ii): no fresh copy of L(w)
		}
		matches := 0
		for _, c := range lw {
			if c == color {
				matches++
			}
		}
		if matches >= 2 {
			return false // rule (ii)
		}
	}
	return true
}

func cloneList(m map[int]int) map[int]int {
	c := make(map[int]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// SetupCont emits Learn-degree followed by Two-Hop-Coloring; when the
// setup window ends, *out holds the device's schedule information for
// the simulation and k resumes.
func SetupCont(start uint64, p Params, out *ColoringResult, k radio.Cont) radio.Cont {
	neighbors := new([]int)
	return LearnDegreeCont(start, p, neighbors,
		TwoHopColoringCont(start+uint64(p.LearnSlots), p, neighbors, out, k))
}

// localChannel is the virtual LOCAL channel handle handed to a simulated
// step machine: informational queries forward to the physical channel,
// the model reads LOCAL, and the clock is the driver's virtual clock.
type localChannel struct {
	phys radio.Channel
	drv  *simDriver
}

func (l *localChannel) Index() int            { return l.phys.Index() }
func (l *localChannel) N() int                { return l.phys.N() }
func (l *localChannel) MaxDegree() int        { return l.phys.MaxDegree() }
func (l *localChannel) Diameter() (int, bool) { return l.phys.Diameter() }
func (l *localChannel) IDSpace() int          { return l.phys.IDSpace() }
func (l *localChannel) AssignedID() int       { return l.phys.AssignedID() }
func (l *localChannel) Model() radio.Model    { return radio.Local }
func (l *localChannel) Rand() *rand.Rand      { return l.phys.Rand() }
func (l *localChannel) Now() uint64           { return l.drv.vnow }

// simDriver executes a LOCAL step machine over a physical No-CD (or CD)
// channel using a two-hop coloring (Theorem 3). Virtual slot s maps to
// the physical frame [base+(s-1)*k, base+s*k): the device transmits in
// its color's slot of the frame and listens in its neighbors' color
// slots, collision-free by the coloring property. Each inner action
// expands to its frame's physical actions plus a closing sleep.
type simDriver struct {
	inner radio.Proc
	base  uint64 // physical slot preceding virtual slot 1's frame
	k     uint64
	color int
	// neighbor colors sorted ascending (listen order within a frame)
	nbColors []int

	vch  *localChannel
	vnow uint64 // virtual clock
	mode uint8  // simFeed, simAfterTx, or simListening
	pend radio.Feedback
	ls   uint64 // virtual slot of the listen being serviced
	li   int    // next neighbor-color index within that frame
	got  []any
}

const (
	simFeed      = iota // hand pend to the inner proc and expand its action
	simAfterTx          // transmit issued; close the frame with a sleep
	simListening        // collecting per-neighbor-color listens
)

// newSimDriver builds the driver. base is the last physical slot
// consumed by setup (virtual slot 1's frame starts at base+1).
func newSimDriver(base uint64, p Params, c ColoringResult, inner radio.Proc) *simDriver {
	nb := make([]int, 0, len(c.NeighborColors))
	for _, col := range c.NeighborColors {
		nb = append(nb, col)
	}
	sort.Ints(nb)
	return &simDriver{
		inner:    inner,
		base:     base,
		k:        uint64(p.Colors()),
		color:    c.Color,
		nbColors: nb,
	}
}

// frameStart returns the physical slot before virtual slot s's frame.
func (d *simDriver) frameStart(s uint64) uint64 {
	return d.base + (s-1)*d.k
}

func (d *simDriver) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if d.vch == nil {
		d.vch = &localChannel{phys: ch, drv: d}
	}
	for {
		switch d.mode {
		case simAfterTx:
			d.mode = simFeed
			return radio.Sleep(d.frameStart(d.vnow) + d.k)
		case simListening:
			if fb.Status == radio.Received {
				d.got = append(d.got, fb.Payload)
			}
			d.li++
			if d.li < len(d.nbColors) {
				return radio.Listen(d.frameStart(d.ls) + uint64(d.nbColors[d.li]))
			}
			d.mode = simFeed
			if len(d.got) > 0 {
				// All messages from transmitting neighbors are delivered,
				// matching LOCAL semantics.
				payloads := append([]any(nil), d.got...)
				d.pend = radio.Feedback{Status: radio.Received, Payload: payloads[0], Payloads: payloads}
			}
			return radio.Sleep(d.frameStart(d.ls) + d.k)
		}
		act := d.inner.Step(d.vch, d.pend)
		d.pend = radio.Feedback{}
		switch act.Kind {
		case radio.ActHalt:
			return radio.Halt()
		case radio.ActSleep:
			if act.Slot > d.vnow {
				d.vnow = act.Slot
				return radio.Sleep(d.frameStart(d.vnow) + d.k)
			}
			// No-op sleep: re-step the inner proc immediately.
		case radio.ActTransmit:
			if act.Slot <= d.vnow {
				panic("coloring: virtual transmit in the past")
			}
			d.vnow = act.Slot
			d.mode = simAfterTx
			return radio.Transmit(d.frameStart(act.Slot)+uint64(d.color), act.Payload)
		case radio.ActListen:
			if act.Slot <= d.vnow {
				panic("coloring: virtual listen in the past")
			}
			d.vnow = act.Slot
			d.ls = act.Slot
			d.li = 0
			d.got = d.got[:0]
			if len(d.nbColors) == 0 {
				return radio.Sleep(d.frameStart(d.ls) + d.k)
			}
			d.mode = simListening
			return radio.Listen(d.frameStart(d.ls) + uint64(d.nbColors[0]))
		case radio.ActTransmitListen:
			panic("coloring: full duplex is not available under the LOCAL simulation")
		default:
			panic("coloring: invalid simulated action")
		}
	}
}

// SimulateCont emits setup and then drives the inner LOCAL step machine
// through the simulation, all starting at physical slot start. The inner
// proc sees a fresh virtual clock starting at 0; *out holds the coloring
// when k resumes.
func SimulateCont(start uint64, p Params, inner radio.Proc, out *ColoringResult, k radio.Cont) radio.Cont {
	return SetupCont(start, p, out, radio.Eval(func() radio.Cont {
		return radio.ProcCont(newSimDriver(start+p.SetupSlots()-1, p, *out, inner), k)
	}))
}

// SimulateProc wraps SimulateCont as a standalone device step machine.
func SimulateProc(start uint64, p Params, inner radio.Proc, out *ColoringResult) radio.Proc {
	return radio.ContProc(func(ch radio.Channel) radio.Cont {
		return SimulateCont(start, p, inner, out, nil)
	})
}
