// Package coloring implements Section 3 of the paper: the Learn-degree
// protocol (Lemma 4), the distributed Two-Hop-Coloring of G+G^2
// (Lemmas 5-6), and the Theorem 3 simulation of LOCAL algorithms in the
// No-CD model.
//
// Given a coloring where all vertices within distance two receive
// distinct colors, a LOCAL round is simulated by a frame of k = 2*Delta^2
// slots: a vertex transmits only in the slot of its own color and listens
// only in the slots of its neighbors' colors, which eliminates collisions
// entirely. The simulation multiplies time by k and energy by at most
// Delta+1, which is what makes it attractive exactly when Delta = O(1)
// (Corollary 13).
package coloring

import (
	"math/rand/v2"
	"sort"

	"repro/internal/radio"
	"repro/internal/rng"
)

// Params sizes the setup protocols; all fields are global knowledge.
type Params struct {
	// N and Delta are the network parameters.
	N, Delta int
	// LearnSlots is the length of one Learn-degree-style exchange window.
	LearnSlots int
	// ColorIters is the number of Two-Hop-Coloring iterations.
	ColorIters int
	// StepSlots is the length of each iteration's gossip step.
	StepSlots int
}

// NewParams returns w.h.p. parameters for an n-vertex, degree-Delta
// network.
func NewParams(n, delta int) Params {
	if delta < 1 {
		delta = 1
	}
	logN := rng.Log2Ceil(n) + 1
	logD := rng.Log2Ceil(delta) + 1
	return Params{
		N:          n,
		Delta:      delta,
		LearnSlots: 8*delta*logN + 8,
		ColorIters: 4*logN + 4,
		StepSlots:  16*delta*logD + 16,
	}
}

// Colors returns the palette size k = 2*Delta^2 (at least 2).
func (p Params) Colors() int {
	k := 2 * p.Delta * p.Delta
	if k < 2 {
		k = 2
	}
	return k
}

// SetupSlots returns the slot cost of the full setup (Learn-degree, the
// coloring iterations, and the final color-exchange pass).
func (p Params) SetupSlots() uint64 {
	return uint64(p.LearnSlots) + uint64(p.ColorIters)*uint64(p.StepSlots) + uint64(p.LearnSlots)
}

// SimSlots returns the physical-slot cost of simulating the given number
// of virtual LOCAL slots after setup.
func (p Params) SimSlots(virtual uint64) uint64 {
	return virtual * uint64(p.Colors())
}

// TotalSlots returns setup plus simulation cost.
func (p Params) TotalSlots(virtual uint64) uint64 {
	return p.SetupSlots() + p.SimSlots(virtual)
}

// learnMsg is the payload of Learn-degree and color-exchange slots.
type learnMsg struct {
	id    int
	color int
}

// LearnDegree runs the Lemma 4 protocol in the window
// [start, start+LearnSlots): in each slot a device transmits its ID with
// probability 1/(Delta+1) and listens otherwise (the +1 keeps the
// Delta = 1 case from transmitting always). It returns the IDs of all
// neighbors heard (w.h.p. all of them), sorted.
func LearnDegree(e radio.Channel, start uint64, p Params) []int {
	seen := make(map[int]bool)
	for i := 0; i < p.LearnSlots; i++ {
		slot := start + uint64(i)
		if rng.Bernoulli(e.Rand(), 1/float64(p.Delta+1)) {
			e.Transmit(slot, learnMsg{id: e.Index()})
		} else if fb := e.Listen(slot); fb.Status == radio.Received {
			if m, ok := fb.Payload.(learnMsg); ok {
				seen[m.id] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// colorMsg is the gossip payload of Two-Hop-Coloring's step 3.
type colorMsg struct {
	id    int
	color int         // proposed or fixed color
	list  map[int]int // sender's view of its neighbors' colors (its L)
}

// ColoringResult is a device's outcome of Two-Hop-Coloring.
type ColoringResult struct {
	// Color is the device's color in {1..k}; 0 when never fixed
	// (probability 1/poly(n)).
	Color int
	// NeighborColors maps neighbor ID to its final color.
	NeighborColors map[int]int
}

// TwoHopColoring runs the Section 3.1 algorithm in the window
// [start, start+ColorIters*StepSlots+LearnSlots). neighbors must be the
// Learn-degree output. The result is a proper coloring of G+G^2 w.h.p.:
// within every distance-2 neighborhood all colors are distinct.
//
// One deviation from the paper's prose, for airtight safety: the color
// lists L(v) (and the cached copies of neighbors' lists) are reset at the
// start of every iteration, so a vertex only fixes its color based on
// colors announced in the same iteration. The paper's step 4 already
// rejects undefined entries; the reset makes staleness impossible rather
// than just unlikely.
func TwoHopColoring(e radio.Channel, start uint64, p Params, neighbors []int) ColoringResult {
	k := p.Colors()
	color := 0
	fixed := false
	finalList := make(map[int]int, len(neighbors))
	t := start
	for iter := 0; iter < p.ColorIters; iter++ {
		if !fixed {
			color = 1 + e.Rand().IntN(k)
		}
		// Fresh views for this iteration.
		list := make(map[int]int, len(neighbors))           // neighbor id -> announced color
		copies := make(map[int]map[int]int, len(neighbors)) // neighbor id -> its announced list
		for i := 0; i < p.StepSlots; i++ {
			slot := t + uint64(i)
			if rng.Bernoulli(e.Rand(), 1/float64(p.Delta+1)) {
				e.Transmit(slot, colorMsg{id: e.Index(), color: color, list: cloneList(list)})
			} else if fb := e.Listen(slot); fb.Status == radio.Received {
				if m, ok := fb.Payload.(colorMsg); ok {
					list[m.id] = m.color
					copies[m.id] = m.list
				}
			}
		}
		t += uint64(p.StepSlots)
		if fixed {
			for id, c := range list {
				finalList[id] = c
			}
			continue
		}
		if acceptColor(color, neighbors, list, copies) {
			fixed = true
			for id, c := range list {
				finalList[id] = c
			}
		}
	}
	// Final color-exchange pass so every device leaves with fresh
	// neighbor colors (needed for the simulation's listen schedule).
	for i := 0; i < p.LearnSlots; i++ {
		slot := t + uint64(i)
		if rng.Bernoulli(e.Rand(), 1/float64(p.Delta+1)) {
			e.Transmit(slot, learnMsg{id: e.Index(), color: color})
		} else if fb := e.Listen(slot); fb.Status == radio.Received {
			if m, ok := fb.Payload.(learnMsg); ok {
				finalList[m.id] = m.color
			}
		}
	}
	if !fixed {
		color = 0
	}
	return ColoringResult{Color: color, NeighborColors: finalList}
}

// acceptColor applies the paper's step 4: reject when (i) some entry of
// the own list is undefined or equals the candidate, or (ii) some
// neighbor's list is missing, has undefined entries, or contains the
// candidate at least twice.
func acceptColor(color int, neighbors []int, list map[int]int, copies map[int]map[int]int) bool {
	for _, u := range neighbors {
		c, ok := list[u]
		if !ok || c == color {
			return false // rule (i)
		}
	}
	for _, u := range neighbors {
		lw, ok := copies[u]
		if !ok {
			return false // rule (ii): no fresh copy of L(w)
		}
		matches := 0
		for _, c := range lw {
			if c == color {
				matches++
			}
		}
		if matches >= 2 {
			return false // rule (ii)
		}
	}
	return true
}

func cloneList(m map[int]int) map[int]int {
	c := make(map[int]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Setup runs Learn-degree followed by Two-Hop-Coloring and returns the
// device's schedule information for the simulation.
func Setup(e radio.Channel, start uint64, p Params) ColoringResult {
	neighbors := LearnDegree(e, start, p)
	return TwoHopColoring(e, start+uint64(p.LearnSlots), p, neighbors)
}

// LocalEnv is a virtual LOCAL channel layered over a physical No-CD (or
// CD) channel using a two-hop coloring (Theorem 3). Virtual slot s maps
// to the physical frame [base+(s-1)*k, base+s*k): the device transmits in
// its color's slot of the frame and listens in its neighbors' color
// slots, collision-free by the coloring property.
type LocalEnv struct {
	phys  radio.Channel
	base  uint64 // physical slot preceding virtual slot 1's frame
	k     uint64
	color int
	// neighbor colors sorted ascending (listen order within a frame)
	nbColors []int
	now      uint64 // virtual clock
}

// NewLocalEnv builds the virtual channel. base is the last physical slot
// consumed by setup (virtual slot 1's frame starts at base+1).
func NewLocalEnv(phys radio.Channel, base uint64, p Params, c ColoringResult) *LocalEnv {
	nb := make([]int, 0, len(c.NeighborColors))
	for _, col := range c.NeighborColors {
		nb = append(nb, col)
	}
	sort.Ints(nb)
	return &LocalEnv{
		phys:     phys,
		base:     base,
		k:        uint64(p.Colors()),
		color:    c.Color,
		nbColors: nb,
	}
}

// frameStart returns the physical slot before virtual slot s's frame.
func (l *LocalEnv) frameStart(s uint64) uint64 {
	return l.base + (s-1)*l.k
}

// Index returns the underlying device index.
func (l *LocalEnv) Index() int { return l.phys.Index() }

// N returns the number of vertices.
func (l *LocalEnv) N() int { return l.phys.N() }

// MaxDegree returns Delta.
func (l *LocalEnv) MaxDegree() int { return l.phys.MaxDegree() }

// Diameter forwards the physical channel's knowledge.
func (l *LocalEnv) Diameter() (int, bool) { return l.phys.Diameter() }

// IDSpace forwards the physical channel's ID space.
func (l *LocalEnv) IDSpace() int { return l.phys.IDSpace() }

// AssignedID forwards the physical channel's ID assignment.
func (l *LocalEnv) AssignedID() int { return l.phys.AssignedID() }

// Model reports the simulated model.
func (l *LocalEnv) Model() radio.Model { return radio.Local }

// Rand returns the device's private random stream.
func (l *LocalEnv) Rand() *rand.Rand { return l.phys.Rand() }

// Now returns the virtual clock.
func (l *LocalEnv) Now() uint64 { return l.now }

// SleepUntil advances the virtual clock.
func (l *LocalEnv) SleepUntil(slot uint64) {
	if slot > l.now {
		l.now = slot
		l.phys.SleepUntil(l.frameStart(slot) + l.k)
	}
}

// Transmit sends payload in virtual slot s: one physical transmission in
// the device's color slot of s's frame.
func (l *LocalEnv) Transmit(s uint64, payload any) {
	if s <= l.now {
		panic("coloring: virtual transmit in the past")
	}
	l.phys.Transmit(l.frameStart(s)+uint64(l.color), payload)
	l.now = s
	l.phys.SleepUntil(l.frameStart(s) + l.k)
}

// Listen tunes in during virtual slot s: one physical listen per neighbor
// color. All messages from transmitting neighbors are returned, matching
// LOCAL semantics.
func (l *LocalEnv) Listen(s uint64) radio.Feedback {
	if s <= l.now {
		panic("coloring: virtual listen in the past")
	}
	fs := l.frameStart(s)
	var payloads []any
	for _, c := range l.nbColors {
		if fb := l.phys.Listen(fs + uint64(c)); fb.Status == radio.Received {
			payloads = append(payloads, fb.Payload)
		}
	}
	l.now = s
	l.phys.SleepUntil(fs + l.k)
	var out radio.Feedback
	if len(payloads) > 0 {
		out = radio.Feedback{Status: radio.Received, Payload: payloads[0], Payloads: payloads}
	}
	return out
}

// LocalEnv satisfies radio.Channel.
var _ radio.Channel = (*LocalEnv)(nil)

// Simulate runs setup and then the given LOCAL program through the
// simulation, all starting at physical slot start. The program sees a
// fresh virtual clock starting at 0.
func Simulate(e radio.Channel, start uint64, p Params, program func(radio.Channel)) ColoringResult {
	c := Setup(e, start, p)
	le := NewLocalEnv(e, start+p.SetupSlots()-1, p, c)
	program(le)
	return c
}
