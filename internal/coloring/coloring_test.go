package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/radio"
)

func TestLearnDegreeFindsAllNeighbors(t *testing.T) {
	gs := []*graph.Graph{graph.Path(8), graph.Cycle(10), graph.Star(6), graph.Grid(3, 4)}
	for _, g := range gs {
		n := g.N()
		p := NewParams(n, g.MaxDegree())
		learned := make([][]int, n)
		pop := make([]radio.Device, n)
		for v := 0; v < n; v++ {
			v := v
			pop[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
				return LearnDegreeCont(1, p, &learned[v], nil)
			})
		}
		if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 5}, pop); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for v := 0; v < n; v++ {
			want := append([]int(nil), g.Neighbors(v)...)
			if len(learned[v]) != len(want) {
				t.Errorf("%s: vertex %d learned %v, want %d neighbors", g.Name(), v, learned[v], len(want))
				continue
			}
			wantSet := make(map[int]bool, len(want))
			for _, u := range want {
				wantSet[u] = true
			}
			for _, u := range learned[v] {
				if !wantSet[u] {
					t.Errorf("%s: vertex %d learned non-neighbor %d", g.Name(), v, u)
				}
			}
		}
	}
}

// runColoring executes the setup phase on g and returns the per-vertex
// results.
func runColoring(t *testing.T, g *graph.Graph, seed uint64) []ColoringResult {
	t.Helper()
	n := g.N()
	p := NewParams(n, g.MaxDegree())
	results := make([]ColoringResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		v := v
		pop[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
			return SetupCont(1, p, &results[v], nil)
		})
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: seed}, pop); err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
	return results
}

func TestTwoHopColoringProper(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(12), graph.Cycle(9), graph.Grid(3, 5),
		graph.RandomBoundedDegree(20, 4, 1), graph.Star(5),
	}
	for _, g := range gs {
		results := runColoring(t, g, 3)
		k := NewParams(g.N(), g.MaxDegree()).Colors()
		for v := 0; v < g.N(); v++ {
			if results[v].Color == 0 {
				t.Errorf("%s: vertex %d never fixed a color", g.Name(), v)
				continue
			}
			if results[v].Color < 1 || results[v].Color > k {
				t.Errorf("%s: vertex %d color %d outside palette", g.Name(), v, results[v].Color)
			}
		}
		// Proper on G + G^2: distinct colors within distance 2.
		for v := 0; v < g.N(); v++ {
			for _, u := range g.TwoHopNeighbors(v) {
				if u > v && results[v].Color == results[u].Color && results[v].Color != 0 {
					t.Errorf("%s: distance<=2 vertices %d and %d share color %d",
						g.Name(), v, u, results[v].Color)
				}
			}
		}
	}
}

func TestTwoHopColoringNeighborViews(t *testing.T) {
	g := graph.Cycle(8)
	results := runColoring(t, g, 7)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			got, ok := results[v].NeighborColors[u]
			if !ok {
				t.Errorf("vertex %d has no color record for neighbor %d", v, u)
				continue
			}
			if got != results[u].Color {
				t.Errorf("vertex %d thinks neighbor %d has color %d, actual %d",
					v, u, got, results[u].Color)
			}
		}
	}
}

func TestSimulatedLocalCollisionFree(t *testing.T) {
	// Through the simulation, a round where ALL vertices transmit must be
	// heard perfectly by all listeners in the next round — impossible
	// without the coloring under No-CD.
	g := graph.Cycle(10)
	n := g.N()
	p := NewParams(n, g.MaxDegree())
	heardCounts := make([]int, n)
	cres := make([]ColoringResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		v := v
		inner := radio.ContProc(func(ch radio.Channel) radio.Cont {
			idx := ch.Index()
			// Virtual slot 1: everyone transmits; slot 2: everyone
			// listens to silence; slot 3: everyone transmits again;
			// slot 4: listen. Slots 5/6 probe an empty virtual slot.
			return radio.Then(radio.Transmit(1, idx),
				radio.Recv(2, func(fb radio.Feedback) radio.Cont {
					if fb.Status != radio.Silence {
						t.Errorf("vertex %d: expected silence in virtual slot 2", idx)
					}
					return radio.Then(radio.Transmit(3, idx*10),
						radio.Recv(4, func(radio.Feedback) radio.Cont {
							return radio.Then(radio.Transmit(5, idx),
								radio.Recv(6, func(fb radio.Feedback) radio.Cont {
									heardCounts[idx] = len(fb.Payloads)
									return nil
								}))
						}))
				}))
		})
		pop[v].Proc = SimulateProc(1, p, inner, &cres[v])
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 11}, pop); err != nil {
		t.Fatal(err)
	}
	// Nothing was transmitted in virtual slot 6, so everyone hears nothing;
	// the real assertion is that no panic/collision corrupted the run.
	for v, c := range heardCounts {
		if c != 0 {
			t.Errorf("vertex %d heard %d messages in an empty virtual slot", v, c)
		}
	}
}

func TestSimulatedLocalDeliversAllNeighbors(t *testing.T) {
	// Alternate: even vertices transmit in virtual slot 1, odd vertices
	// listen; every odd vertex on a cycle must hear BOTH neighbors —
	// the LOCAL guarantee that No-CD alone cannot provide.
	g := graph.Cycle(8)
	n := g.N()
	p := NewParams(n, g.MaxDegree())
	heard := make([][]any, n)
	cres := make([]ColoringResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		v := v
		inner := radio.ContProc(func(ch radio.Channel) radio.Cont {
			if ch.Index()%2 == 0 {
				return radio.Then(radio.Transmit(1, ch.Index()), nil)
			}
			return radio.Recv(1, func(fb radio.Feedback) radio.Cont {
				heard[v] = fb.Payloads
				return nil
			})
		})
		pop[v].Proc = SimulateProc(1, p, inner, &cres[v])
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 13}, pop); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v += 2 {
		if len(heard[v]) != 2 {
			t.Errorf("vertex %d heard %d of 2 simultaneous neighbors", v, len(heard[v]))
		}
	}
}

func TestCorollary13BroadcastViaSimulation(t *testing.T) {
	// The headline payoff: run the LOCAL iterative-clustering Broadcast
	// through the Theorem 3 simulation on a physical No-CD network with
	// Delta = O(1) — Corollary 13.
	gs := []*graph.Graph{graph.Path(12), graph.Cycle(12), graph.RandomBoundedDegree(16, 3, 2)}
	for _, g := range gs {
		n := g.N()
		cp := NewParams(n, g.MaxDegree())
		ip := iterclust.NewParams(radio.Local, n, g.MaxDegree())
		devs := make([]iterclust.DeviceResult, n)
		cres := make([]ColoringResult, n)
		pop := make([]radio.Device, n)
		for v := 0; v < n; v++ {
			pop[v].Proc = SimulateProc(1, cp,
				iterclust.Proc(ip, v == 0, "c13", &devs[v]), &cres[v])
		}
		res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 17}, pop)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for v, d := range devs {
			if !d.Informed || d.Msg != "c13" {
				t.Errorf("%s: vertex %d not informed via simulation", g.Name(), v)
			}
		}
		if res.MaxEnergy() == 0 {
			t.Errorf("%s: zero energy?", g.Name())
		}
	}
}

func TestParamsSlotAccounting(t *testing.T) {
	p := NewParams(16, 3)
	if p.Colors() != 18 {
		t.Errorf("Colors = %d, want 2*9", p.Colors())
	}
	want := uint64(p.LearnSlots) + uint64(p.ColorIters*p.StepSlots) + uint64(p.LearnSlots)
	if p.SetupSlots() != want {
		t.Errorf("SetupSlots = %d, want %d", p.SetupSlots(), want)
	}
	if p.SimSlots(10) != 10*uint64(p.Colors()) {
		t.Errorf("SimSlots wrong")
	}
	if p.TotalSlots(10) != p.SetupSlots()+p.SimSlots(10) {
		t.Errorf("TotalSlots wrong")
	}
	// Delta clamp.
	p0 := NewParams(4, 0)
	if p0.Delta != 1 || p0.Colors() != 2 {
		t.Errorf("degenerate delta not clamped: %+v", p0)
	}
}

func TestVirtualClockDiscipline(t *testing.T) {
	// Virtual sleeps and transmits must keep both clocks consistent.
	g := graph.Path(2)
	p := NewParams(2, 1)
	cres := make([]ColoringResult, 2)
	talker := radio.ContProc(func(ch radio.Channel) radio.Cont {
		return radio.Then(radio.Sleep(5), radio.EvalCh(func(ch radio.Channel) radio.Cont {
			if ch.Now() != 5 {
				t.Errorf("virtual Now = %d after Sleep(5)", ch.Now())
			}
			return radio.Then(radio.Transmit(7, "x"), radio.EvalCh(func(ch radio.Channel) radio.Cont {
				if ch.Now() != 7 {
					t.Errorf("virtual Now = %d after Transmit(7)", ch.Now())
				}
				return nil
			}))
		}))
	})
	listener := radio.ContProc(func(ch radio.Channel) radio.Cont {
		return radio.Recv(7, func(fb radio.Feedback) radio.Cont {
			if fb.Status != radio.Received || fb.Payload != "x" {
				t.Errorf("virtual listen missed the message: %+v", fb)
			}
			return nil
		})
	})
	pop := []radio.Device{
		{Proc: SimulateProc(1, p, talker, &cres[0])},
		{Proc: SimulateProc(1, p, listener, &cres[1])},
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 19}, pop); err != nil {
		t.Fatal(err)
	}
}
