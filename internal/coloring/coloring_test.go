package coloring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/radio"
)

func TestLearnDegreeFindsAllNeighbors(t *testing.T) {
	gs := []*graph.Graph{graph.Path(8), graph.Cycle(10), graph.Star(6), graph.Grid(3, 4)}
	for _, g := range gs {
		n := g.N()
		p := NewParams(n, g.MaxDegree())
		learned := make([][]int, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			programs[v] = func(e *radio.Env) {
				learned[e.Index()] = LearnDegree(e, 1, p)
			}
		}
		if _, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: 5}, programs); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for v := 0; v < n; v++ {
			want := append([]int(nil), g.Neighbors(v)...)
			if len(learned[v]) != len(want) {
				t.Errorf("%s: vertex %d learned %v, want %d neighbors", g.Name(), v, learned[v], len(want))
				continue
			}
			wantSet := make(map[int]bool, len(want))
			for _, u := range want {
				wantSet[u] = true
			}
			for _, u := range learned[v] {
				if !wantSet[u] {
					t.Errorf("%s: vertex %d learned non-neighbor %d", g.Name(), v, u)
				}
			}
		}
	}
}

// runColoring executes Setup on g and returns the per-vertex results.
func runColoring(t *testing.T, g *graph.Graph, seed uint64) []ColoringResult {
	t.Helper()
	n := g.N()
	p := NewParams(n, g.MaxDegree())
	results := make([]ColoringResult, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = func(e *radio.Env) {
			results[e.Index()] = Setup(e, 1, p)
		}
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: seed}, programs); err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
	return results
}

func TestTwoHopColoringProper(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(12), graph.Cycle(9), graph.Grid(3, 5),
		graph.RandomBoundedDegree(20, 4, 1), graph.Star(5),
	}
	for _, g := range gs {
		results := runColoring(t, g, 3)
		k := NewParams(g.N(), g.MaxDegree()).Colors()
		for v := 0; v < g.N(); v++ {
			if results[v].Color == 0 {
				t.Errorf("%s: vertex %d never fixed a color", g.Name(), v)
				continue
			}
			if results[v].Color < 1 || results[v].Color > k {
				t.Errorf("%s: vertex %d color %d outside palette", g.Name(), v, results[v].Color)
			}
		}
		// Proper on G + G^2: distinct colors within distance 2.
		for v := 0; v < g.N(); v++ {
			for _, u := range g.TwoHopNeighbors(v) {
				if u > v && results[v].Color == results[u].Color && results[v].Color != 0 {
					t.Errorf("%s: distance<=2 vertices %d and %d share color %d",
						g.Name(), v, u, results[v].Color)
				}
			}
		}
	}
}

func TestTwoHopColoringNeighborViews(t *testing.T) {
	g := graph.Cycle(8)
	results := runColoring(t, g, 7)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			got, ok := results[v].NeighborColors[u]
			if !ok {
				t.Errorf("vertex %d has no color record for neighbor %d", v, u)
				continue
			}
			if got != results[u].Color {
				t.Errorf("vertex %d thinks neighbor %d has color %d, actual %d",
					v, u, got, results[u].Color)
			}
		}
	}
}

func TestSimulatedLocalCollisionFree(t *testing.T) {
	// Through the simulation, a round where ALL vertices transmit must be
	// heard perfectly by all listeners in the next round — impossible
	// without the coloring under No-CD.
	g := graph.Cycle(10)
	n := g.N()
	p := NewParams(n, g.MaxDegree())
	heardCounts := make([]int, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = func(e *radio.Env) {
			Simulate(e, 1, p, func(le radio.Channel) {
				// Virtual slot 1: everyone transmits; slot 2: everyone
				// listens to silence; slot 3: everyone transmits again;
				// slot 4: listen.
				le.Transmit(1, le.Index())
				if fb := le.Listen(2); fb.Status != radio.Silence {
					t.Errorf("vertex %d: expected silence in virtual slot 2", le.Index())
				}
				le.Transmit(3, le.Index()*10)
				fb := le.Listen(4)
				_ = fb
				// Count what we hear when both neighbors transmit in the
				// same virtual slot as us: test via slot 5/6.
				le.Transmit(5, le.Index())
				heard := le.Listen(6)
				heardCounts[le.Index()] = len(heard.Payloads)
			})
		}
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: 11}, programs); err != nil {
		t.Fatal(err)
	}
	// Nothing was transmitted in virtual slot 6, so everyone hears nothing;
	// the real assertion is that no panic/collision corrupted the run.
	for v, c := range heardCounts {
		if c != 0 {
			t.Errorf("vertex %d heard %d messages in an empty virtual slot", v, c)
		}
	}
}

func TestSimulatedLocalDeliversAllNeighbors(t *testing.T) {
	// Alternate: even vertices transmit in virtual slot 1, odd vertices
	// listen; every odd vertex on a cycle must hear BOTH neighbors —
	// the LOCAL guarantee that No-CD alone cannot provide.
	g := graph.Cycle(8)
	n := g.N()
	p := NewParams(n, g.MaxDegree())
	heard := make([][]any, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = func(e *radio.Env) {
			Simulate(e, 1, p, func(le radio.Channel) {
				if le.Index()%2 == 0 {
					le.Transmit(1, le.Index())
				} else {
					fb := le.Listen(1)
					heard[le.Index()] = fb.Payloads
				}
			})
		}
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: 13}, programs); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v += 2 {
		if len(heard[v]) != 2 {
			t.Errorf("vertex %d heard %d of 2 simultaneous neighbors", v, len(heard[v]))
		}
	}
}

func TestCorollary13BroadcastViaSimulation(t *testing.T) {
	// The headline payoff: run the LOCAL iterative-clustering Broadcast
	// through the Theorem 3 simulation on a physical No-CD network with
	// Delta = O(1) — Corollary 13.
	gs := []*graph.Graph{graph.Path(12), graph.Cycle(12), graph.RandomBoundedDegree(16, 3, 2)}
	for _, g := range gs {
		n := g.N()
		cp := NewParams(n, g.MaxDegree())
		ip := iterclust.NewParams(radio.Local, n, g.MaxDegree())
		devs := make([]iterclust.DeviceResult, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			programs[v] = func(e *radio.Env) {
				Simulate(e, 1, cp, iterclust.ChannelProgram(ip, e.Index() == 0, "c13", &devs[e.Index()]))
			}
		}
		res, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: 17}, programs)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for v, d := range devs {
			if !d.Informed || d.Msg != "c13" {
				t.Errorf("%s: vertex %d not informed via simulation", g.Name(), v)
			}
		}
		if res.MaxEnergy() == 0 {
			t.Errorf("%s: zero energy?", g.Name())
		}
	}
}

func TestParamsSlotAccounting(t *testing.T) {
	p := NewParams(16, 3)
	if p.Colors() != 18 {
		t.Errorf("Colors = %d, want 2*9", p.Colors())
	}
	want := uint64(p.LearnSlots) + uint64(p.ColorIters*p.StepSlots) + uint64(p.LearnSlots)
	if p.SetupSlots() != want {
		t.Errorf("SetupSlots = %d, want %d", p.SetupSlots(), want)
	}
	if p.SimSlots(10) != 10*uint64(p.Colors()) {
		t.Errorf("SimSlots wrong")
	}
	if p.TotalSlots(10) != p.SetupSlots()+p.SimSlots(10) {
		t.Errorf("TotalSlots wrong")
	}
	// Delta clamp.
	p0 := NewParams(4, 0)
	if p0.Delta != 1 || p0.Colors() != 2 {
		t.Errorf("degenerate delta not clamped: %+v", p0)
	}
}

func TestVirtualClockDiscipline(t *testing.T) {
	// Virtual SleepUntil + Transmit must keep both clocks consistent.
	g := graph.Path(2)
	p := NewParams(2, 1)
	programs := []radio.Program{
		func(e *radio.Env) {
			Simulate(e, 1, p, func(le radio.Channel) {
				le.SleepUntil(5)
				if le.Now() != 5 {
					t.Errorf("virtual Now = %d after SleepUntil(5)", le.Now())
				}
				le.Transmit(7, "x")
				if le.Now() != 7 {
					t.Errorf("virtual Now = %d after Transmit(7)", le.Now())
				}
			})
		},
		func(e *radio.Env) {
			Simulate(e, 1, p, func(le radio.Channel) {
				fb := le.Listen(7)
				if fb.Status != radio.Received || fb.Payload != "x" {
					t.Errorf("virtual listen missed the message: %+v", fb)
				}
			})
		},
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: 19}, programs); err != nil {
		t.Fatal(err)
	}
}
