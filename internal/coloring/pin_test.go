package coloring_test

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// The port pin drives the Theorem 3 pipeline end to end — LearnDegree,
// TwoHopColoring, and the LOCAL-over-No-CD simulation wrapping the
// LOCAL iterative-clustering broadcast — through core.Broadcast, and
// reduces the physical event stream to digests generated from the
// pre-port blocking implementation. The ported step machines must
// reproduce them byte for byte; regenerate only with -update-pin and a
// reviewed diff.
var updatePin = flag.Bool("update-pin", false, "rewrite testdata/port_pin.txt from the current implementation")

func evString(ev radio.Event) string {
	kind := "?"
	switch ev.Kind {
	case radio.EventTransmit:
		kind = "tx"
	case radio.EventReceive:
		kind = "rx"
	case radio.EventSilence:
		kind = "sil"
	case radio.EventNoise:
		kind = "noise"
	}
	return fmt.Sprintf("%d %d %s %v %d", ev.Slot, ev.Dev, kind, ev.Payload, ev.From)
}

func comparePin(t *testing.T, got string) {
	t.Helper()
	path := filepath.Join("testdata", "port_pin.txt")
	if *updatePin {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing pin file (generate with -update-pin): %v", err)
	}
	if got != string(want) {
		t.Errorf("port pin diverged from the pre-port reference:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPortPin(t *testing.T) {
	scens := []struct {
		name string
		g    *graph.Graph
		seed uint64
	}{
		{"bounded-path6", graph.Path(6), 3},
		{"bounded-cycle8", graph.Cycle(8), 5},
	}
	var sb strings.Builder
	for _, sc := range scens {
		h := fnv.New64a()
		res, err := core.Broadcast(sc.g, 0,
			core.WithModel(radio.NoCD),
			core.WithAlgorithm(core.AlgoBoundedDegree),
			core.WithSeed(sc.seed),
			core.WithTrace(func(ev radio.Event) { fmt.Fprintln(h, evString(ev)) }))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		oh := fnv.New64a()
		for v, inf := range res.Informed {
			fmt.Fprintf(oh, "%d %v\n", v, inf)
		}
		fmt.Fprintf(&sb, "%s events=%d trace=%016x out=%016x slots=%d maxE=%d totE=%d\n",
			sc.name, res.Events, h.Sum64(), oh.Sum64(), res.Slots, res.MaxEnergy(), res.TotalEnergy())
	}
	comparePin(t, sb.String())
}
