package dtime

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// The port pin reduces the full event stream and per-device outcomes of
// fixed scenarios to digests generated from the pre-port blocking
// implementation. The ported step machines must reproduce them byte for
// byte; regenerate only with -update-pin and a reviewed diff.
var updatePin = flag.Bool("update-pin", false, "rewrite testdata/port_pin.txt from the current implementation")

func evString(ev radio.Event) string {
	kind := "?"
	switch ev.Kind {
	case radio.EventTransmit:
		kind = "tx"
	case radio.EventReceive:
		kind = "rx"
	case radio.EventSilence:
		kind = "sil"
	case radio.EventNoise:
		kind = "noise"
	}
	return fmt.Sprintf("%d %d %s %v %d", ev.Slot, ev.Dev, kind, ev.Payload, ev.From)
}

func comparePin(t *testing.T, got string) {
	t.Helper()
	path := filepath.Join("testdata", "port_pin.txt")
	if *updatePin {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing pin file (generate with -update-pin): %v", err)
	}
	if got != string(want) {
		t.Errorf("port pin diverged from the pre-port reference:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPortPin(t *testing.T) {
	scens := []struct {
		name  string
		g     *graph.Graph
		model radio.Model
		seed  uint64
	}{
		{"nocd-path6", graph.Path(6), radio.NoCD, 3},
		{"cd-gnp8", graph.GNP(8, 0.4, 2), radio.CD, 5},
		{"local-grid24", graph.Grid(2, 4), radio.Local, 9},
	}
	var sb strings.Builder
	for _, sc := range scens {
		n := sc.g.N()
		d, err := sc.g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewParamsBeta(sc.model, n, sc.g.MaxDegree(), d, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		p = p.Tune(n, 4, 3, 2, 1)
		devs := make([]DeviceResult, n)
		h := fnv.New64a()
		pop := make([]radio.Device, n)
		for v := 0; v < n; v++ {
			pop[v].Proc = Proc(p, v == 0, "pin", &devs[v])
		}
		res, err := radio.RunDevices(radio.Config{Graph: sc.g, Model: p.SR.Model, Seed: sc.seed,
			MaxSlots: 1 << 62,
			Trace:    func(ev radio.Event) { fmt.Fprintln(h, evString(ev)) }}, pop)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		oh := fnv.New64a()
		for v, dres := range devs {
			fmt.Fprintf(oh, "%d %v %v %d %d\n", v, dres.Informed, dres.Msg, dres.Label, dres.Cluster)
		}
		fmt.Fprintf(&sb, "%s events=%d trace=%016x out=%016x slots=%d maxE=%d totE=%d\n",
			sc.name, res.Events, h.Sum64(), oh.Sum64(), res.Slots, res.MaxEnergy(), res.TotalEnergy())
	}
	comparePin(t, sb.String())
}
