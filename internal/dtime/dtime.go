// Package dtime implements the Theorem 16 Broadcast algorithm of Section
// 6: near-diameter time O(D^{1+eps} polylog n) with polylog n energy.
//
// The algorithm iterates Partition(beta) on the cluster graph: each
// iteration contracts the current clustering (represented as a good
// labeling plus per-vertex cluster ids and shared random seeds) by a
// 3*beta diameter factor (Lemma 15), and after O(log_{1/3beta} D)
// iterations the cluster graph has polylog diameter, at which point the
// Lemma 10 Broadcast finishes the job.
//
// One round of the cluster-graph protocol is simulated with the paper's
// own machinery:
//
//   - intra-cluster Downward/Upward transmissions use the Lemma 17
//     construction: O(C log n) repetitions of an SR-communication window,
//     where in each repetition a cluster participates with probability
//     1/C decided by its shared random seed, so that with constant
//     probability a receiver's neighborhood contains transmitters of a
//     single cluster (C bounds the number of distinct clusters adjacent
//     to any vertex, Lemma 14(2));
//   - inter-cluster merge offers use a plain SR-communication All-cast
//     (any adjacent active cluster's offer is acceptable);
//   - cluster merges re-root the joining cluster at the vertex that
//     captured the offer and propagate new labels with one Upward and one
//     Downward sweep over the old labeling (Section 6.4).
//
// Epochs pipeline decisions with one epoch of lag: offers captured in
// epoch t are gathered to the old root in epoch t and announced (with
// relabeling) in epoch t+1.
package dtime

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures a Theorem 16 run; all fields are global knowledge.
type Params struct {
	// Beta is the partition rate (0 < Beta <= 1/4 recommended).
	Beta float64
	// Iterations is the number of cluster-graph partition iterations K.
	Iterations int
	// EpochsPerIter is T = Theta(log n / beta).
	EpochsPerIter int
	// C bounds the distinct clusters adjacent to any vertex (Lemma 14(2)).
	C int
	// CL is the repetition count of each Lemma 17 window (Theta(C log n)).
	CL int
	// FinalD is the diameter bound for the closing Lemma 10 Broadcast.
	FinalD int
	// SR is the base SR-communication window.
	SR cluster.Spec
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
	// layer bounds per iteration: lb[0] = 1 (initial singletons), lb[i] =
	// label bound after iteration i.
	lb []int
}

// NewParams derives the standard parameterization. diam is the known
// diameter bound D (use n when unknown); eps maps to beta =
// log^{-1/eps} n as in Section 6.1, clamped to [1/16, 1/4].
func NewParams(model radio.Model, n, delta, diam int, eps float64) (Params, error) {
	if n < 1 {
		return Params{}, fmt.Errorf("dtime: n = %d", n)
	}
	if eps <= 0 || eps > 1 {
		eps = 0.5
	}
	logN := float64(rng.Log2Ceil(n) + 1)
	beta := math.Pow(logN, -1/eps)
	if beta > 0.25 {
		beta = 0.25
	}
	if beta < 1.0/16 {
		beta = 1.0 / 16
	}
	return newParams(model, n, delta, diam, beta)
}

// NewParamsBeta builds parameters with an explicit beta, for experiments
// sweeping the tradeoff directly.
func NewParamsBeta(model radio.Model, n, delta, diam int, beta float64) (Params, error) {
	if beta <= 0 || beta > 0.25 {
		return Params{}, fmt.Errorf("dtime: beta %v outside (0, 1/4]", beta)
	}
	return newParams(model, n, delta, diam, beta)
}

func newParams(model radio.Model, n, delta, diam int, beta float64) (Params, error) {
	if diam < 1 {
		diam = 1
	}
	logN := rng.Log2Ceil(n) + 1
	shrink := math.Log(1 / (3 * beta))
	if shrink < 0.1 {
		shrink = 0.1
	}
	// Iterate until the estimated cluster-graph diameter reaches the
	// polylog floor (the Lemma 15 analysis permits any Theta(polylog)
	// floor; the constant here keeps K > 0 on experiment-scale graphs).
	floor := logN + 2
	k := 0
	d := float64(diam)
	for d > float64(floor) && k < 64 {
		d = math.Ceil(3*beta*d) + 2
		k++
	}
	t := int(math.Ceil(2 * float64(logN) / beta))
	if t < 4 {
		t = 4
	}
	c := 2*int(math.Ceil(float64(logN)/shrink*math.Ln2)) + 4
	if c > n {
		c = n
	}
	p := Params{
		Beta:          beta,
		Iterations:    k,
		EpochsPerIter: t,
		C:             c,
		CL:            2*c + 2*logN,
		FinalD:        int(d) + 1,
		SR:            cluster.NewSpec(model, n, delta),
		lb:            make([]int, k+1),
	}
	p.lb[0] = 1
	for i := 1; i <= k; i++ {
		p.lb[i] = (2*t+2)*p.lb[i-1] + t + 2
		// Labels are bounded by n-1 on any graph (they strictly increase
		// along paths of distinct vertices), so windows beyond n are
		// never used.
		if p.lb[i] > n {
			p.lb[i] = n
		}
	}
	if p.Slots() > 1<<55 {
		return Params{}, fmt.Errorf("dtime: schedule of %d slots is impractical (D=%d, beta=%v)",
			p.Slots(), diam, beta)
	}
	return p, nil
}

// LayerBound returns the label bound after all iterations.
func (p Params) LayerBound() int { return p.lb[p.Iterations] }

// Tune overrides the protocol constants (for experiments trading failure
// probability against wall time) and recomputes the derived layer bounds.
// n is the network size used to cap the bounds; non-positive arguments
// keep the current values. iters additionally forces the partition
// iteration count (useful on small graphs whose diameter is already
// below the polylog floor).
func (p Params) Tune(n, epochs, c, cl, iters int) Params {
	if epochs > 0 {
		p.EpochsPerIter = epochs
	}
	if c > 0 {
		p.C = c
	}
	if cl > 0 {
		p.CL = cl
	}
	if iters > 0 {
		p.Iterations = iters
	}
	lb := make([]int, p.Iterations+1)
	lb[0] = 1
	for i := 1; i <= p.Iterations; i++ {
		lb[i] = (2*p.EpochsPerIter+2)*lb[i-1] + p.EpochsPerIter + 2
		if lb[i] > n {
			lb[i] = n
		}
	}
	p.lb = lb
	return p
}

// sweepSlots is the slot cost of one Lemma 17 sweep over old labels with
// bound lb: (lb-1) windows of CL repetitions each.
func (p Params) sweepSlots(lb int) uint64 {
	if lb <= 1 {
		return 0
	}
	return uint64(lb-1) * uint64(p.CL) * p.SR.Slots()
}

// epochSlots is the slot cost of one epoch at iteration i (label bound
// lb): announce + relabel-up + relabel-down + offers + gather.
func (p Params) epochSlots(lb int) uint64 {
	return 3*p.sweepSlots(lb) + p.SR.Slots() + p.sweepSlots(lb)
}

// iterSlots is the slot cost of one partition iteration at label bound
// lb: T+1 epochs (the last announces the final gathered joins) plus one
// healing relabel pass.
func (p Params) iterSlots(lb int) uint64 {
	return uint64(p.EpochsPerIter+1)*p.epochSlots(lb) + 2*p.sweepSlots(lb)
}

// Slots returns the full schedule length: K partition iterations plus the
// closing Lemma 10 Broadcast.
func (p Params) Slots() uint64 {
	total := uint64(0)
	for i := 0; i < p.Iterations; i++ {
		total += p.iterSlots(p.lb[i])
	}
	return total + cluster.BroadcastSlots(p.SR, p.LayerBound(), p.FinalD)
}

// message payloads.
type offerMsg struct {
	newCID   int
	newLayer int
	newSeed  uint64
}

type gatherMsg struct {
	oldCID   int
	capturer int
	offer    offerMsg
}

type announceMsg struct {
	oldCID   int
	activate bool
	capturer int
	offer    offerMsg
}

type relabelMsg struct {
	oldCID   int
	newLayer int
}

// devState is a device's cluster bookkeeping.
type devState struct {
	idx int
	p   Params

	oldCID   int
	oldLayer int
	oldSeed  uint64

	active   bool // member of an already re-clustered cluster
	joined   bool // cluster merged but this member may lack a layer yet
	newCID   int
	newLayer int // -1 until known
	newSeed  uint64

	captured     *offerMsg // offer captured in the current epoch
	pendingJoin  *gatherMsg
	announceBody *announceMsg // announcement relayed through the cluster
	iter         int          // current partition iteration index

	dDelta float64 // root only: exponential shift
	start  int     // root only: start epoch
}

// coin reports whether the cluster with the given seed participates in
// the Lemma 17 repetition anchored at absolute slot ws (probability 1/C).
// Every member derives the same coin.
func (p Params) coin(seed uint64, ws uint64) bool {
	r := rng.New(rng.Child(seed, ws))
	return r.IntN(p.C) == 0
}

// sweepCont emits one Lemma 17 sweep over old labels, resuming with k.
// dir is +1 (downward: senders at layer l, receivers at l+1) or -1
// (upward). The callbacks decide participation and handle acceptance;
// send returns the payload and the sampling seed for the device's
// cluster. Participation is evaluated at each repetition's window start,
// so the emitted event stream matches the blocking original slot for
// slot.
func (s *devState) sweepCont(start uint64, dir int,
	send func(window int) (any, uint64, bool),
	recv func(window int, m any) bool, k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		p := s.p
		lb := p.lb[s.iter]
		if lb <= 1 {
			return k
		}
		w := p.SR.Slots()
		total := (lb - 1) * p.CL
		var rep func(r int) radio.Cont
		rep = func(r int) radio.Cont {
			if r == total {
				return k
			}
			win := r / p.CL
			// Window win links sender layer sl to receiver layer rl.
			var sl, rl int
			if dir > 0 {
				sl, rl = win, win+1
			} else {
				sl, rl = lb-1-win, lb-2-win
			}
			ws := start + uint64(r)*w
			next := radio.Eval(func() radio.Cont { return rep(r + 1) })
			return radio.Eval(func() radio.Cont {
				payload, seed, isSender := any(nil), uint64(0), false
				if s.oldLayer == sl {
					payload, seed, isSender = send(win)
				}
				switch {
				case isSender && p.coin(seed, ws):
					return p.SR.SendCont(ws, func() any { return payload }, next)
				case s.oldLayer == rl:
					return p.SR.ReceiveCont(ws, func(m any, ok bool) {
						if ok {
							recv(win, m)
						}
					}, next)
				default:
					return p.SR.SkipCont(ws, next)
				}
			})
		}
		return rep(0)
	})
}

// DeviceResult is one device's final view.
type DeviceResult struct {
	Informed bool
	Msg      any
	Label    int
	Cluster  int
}

// RunCont is the continuation form of the Theorem 16 device program
// starting at slot 1, resuming with k when the schedule ends. The
// device's first private draw (the shared cluster seed) happens when the
// continuation first runs; out is complete before k resumes.
func RunCont(p Params, isSource bool, msg any, out *DeviceResult, k radio.Cont) radio.Cont {
	return radio.EvalCh(func(ch radio.Channel) radio.Cont {
		s := &devState{
			idx: ch.Index(), p: p,
			oldCID: ch.Index(), oldLayer: 0,
			oldSeed:  ch.Rand().Uint64(),
			newLayer: -1, newCID: -1,
		}
		var iterC func(iter int, t uint64) radio.Cont
		iterC = func(iter int, t uint64) radio.Cont {
			if iter == p.Iterations {
				b := &cluster.Broadcaster{SR: p.SR, Layers: p.LayerBound()}
				return radio.Do(func() {
					b.Label, b.Has, b.Msg = s.oldLayer, isSource, msg
				}, b.BroadcastCont(t, p.FinalD, radio.Do(func() {
					out.Informed = b.Has
					out.Msg = b.Msg
					out.Label = s.oldLayer
					out.Cluster = s.oldCID
				}, k)))
			}
			return s.iterationCont(iter, t, radio.Eval(func() radio.Cont {
				return iterC(iter+1, t+p.iterSlots(p.lb[iter]))
			}))
		}
		return iterC(0, 1)
	})
}

// Proc returns the device step machine implementing Theorem 16.
func Proc(p Params, isSource bool, msg any, out *DeviceResult) radio.Proc {
	return radio.ContProc(func(ch radio.Channel) radio.Cont {
		return RunCont(p, isSource, msg, out, nil)
	})
}

// iterationCont emits one Partition(beta) round on the cluster graph:
// per-iteration reset and the root's exponential draw at round start,
// T+1 pipelined epochs, the healing relabel pass, and the old/new
// clustering handover before k resumes.
func (s *devState) iterationCont(iter int, start uint64, k radio.Cont) radio.Cont {
	return radio.EvalCh(func(ch radio.Channel) radio.Cont {
		p := s.p
		s.iter = iter
		// Reset per-iteration state; the previous clustering is "old".
		s.active, s.joined = false, false
		s.newCID, s.newLayer, s.newSeed = -1, -1, 0
		s.captured, s.pendingJoin, s.announceBody = nil, nil, nil
		if s.oldCID == s.idx {
			s.dDelta = rng.Exponential(ch.Rand(), p.Beta)
			s.start = p.EpochsPerIter - int(math.Ceil(s.dDelta))
			if s.start < 1 {
				s.start = 1
			}
		}
		sw := p.sweepSlots(p.lb[iter])
		w := p.SR.Slots()
		es := p.epochSlots(p.lb[iter])
		var epochC func(epoch int, t uint64) radio.Cont
		epochC = func(epoch int, t uint64) radio.Cont {
			if epoch > p.EpochsPerIter+1 {
				// Healing pass for relabel stragglers, then the new
				// clustering becomes the old one for the next iteration.
				return s.relabelUpCont(t, s.relabelDownCont(t+sw, radio.Do(func() {
					if s.newLayer < 0 {
						// Fallback (probability 1/poly(n)): keep the old
						// identity as a singleton-style remnant so the
						// labeling stays good locally.
						s.newCID, s.newLayer, s.newSeed = s.oldCID, s.oldLayer, s.oldSeed
					}
					s.oldCID, s.oldLayer, s.oldSeed = s.newCID, s.newLayer, s.newSeed
				}, k)))
			}
			return s.announcePhaseCont(t, epoch,
				s.relabelUpCont(t+sw,
					s.relabelDownCont(t+2*sw,
						s.offerPhaseCont(t+3*sw, epoch,
							s.gatherPhaseCont(t+3*sw+w,
								radio.Eval(func() radio.Cont { return epochC(epoch+1, t+es) }))))))
		}
		return epochC(1, start)
	})
}

// announcePhaseCont: the old root announces either self-activation or
// the gathered join decision; members adopt the new cluster identity.
// Roots of singleton clusters act locally (no windows exist at lb=1).
func (s *devState) announcePhaseCont(start uint64, epoch int, k radio.Cont) radio.Cont {
	p := s.p
	return radio.Do(func() {
		isRoot := s.oldCID == s.idx
		if isRoot && !s.active && !s.joined {
			switch {
			case s.pendingJoin != nil:
				g := s.pendingJoin
				s.joined = true
				s.newCID = g.offer.newCID
				s.newSeed = g.offer.newSeed
				if g.capturer == s.idx {
					s.newLayer = g.offer.newLayer + 1
					s.active = true
				}
				s.announceBody = &announceMsg{oldCID: s.oldCID, capturer: g.capturer, offer: g.offer}
			case s.start <= epoch && epoch <= p.EpochsPerIter:
				// Self-activate: the whole old cluster becomes a new cluster.
				s.active, s.joined = true, true
				s.newCID = s.oldCID
				s.newLayer = s.oldLayer
				s.newSeed = rng.Child(s.oldSeed, uint64(s.iter)+0x5eed)
				s.announceBody = &announceMsg{oldCID: s.oldCID, activate: true}
			}
		}
	}, s.sweepCont(start, +1, // Downward sweep: members holding the announcement relay it.
		func(int) (any, uint64, bool) {
			if s.announceBody != nil {
				return *s.announceBody, s.oldSeed, true
			}
			return nil, 0, false
		},
		func(_ int, m any) bool {
			am, ok := m.(announceMsg)
			if !ok || am.oldCID != s.oldCID || s.joined {
				return false
			}
			s.joined = true
			s.announceBody = &am
			if am.activate {
				s.active = true
				s.newCID = s.oldCID
				s.newLayer = s.oldLayer
				s.newSeed = rng.Child(s.oldSeed, uint64(s.iter)+0x5eed)
				return true
			}
			s.newCID = am.offer.newCID
			s.newSeed = am.offer.newSeed
			if am.capturer == s.idx {
				s.newLayer = am.offer.newLayer + 1
				s.active = true
			}
			return true
		}, k))
}

// relabelUpCont / relabelDownCont: propagate new layers through a joined
// cluster along the old labeling (Section 6.4).
func (s *devState) relabelUpCont(start uint64, k radio.Cont) radio.Cont {
	return s.sweepCont(start, -1, s.sendRelabel, s.acceptRelabel, k)
}

func (s *devState) relabelDownCont(start uint64, k radio.Cont) radio.Cont {
	return s.sweepCont(start, +1, s.sendRelabel, s.acceptRelabel, k)
}

func (s *devState) sendRelabel(int) (any, uint64, bool) {
	if s.joined && s.newLayer >= 0 {
		return relabelMsg{oldCID: s.oldCID, newLayer: s.newLayer}, s.oldSeed, true
	}
	return nil, 0, false
}

func (s *devState) acceptRelabel(_ int, m any) bool {
	rm, ok := m.(relabelMsg)
	if !ok || rm.oldCID != s.oldCID || !s.joined || s.newLayer >= 0 {
		return false
	}
	s.newLayer = rm.newLayer + 1
	s.active = true
	return true
}

// offerPhaseCont: active members advertise their new cluster; members of
// still-unclustered clusters capture any offer (plain All-cast window).
func (s *devState) offerPhaseCont(start uint64, epoch int, k radio.Cont) radio.Cont {
	p := s.p
	return radio.Eval(func() radio.Cont {
		switch {
		case s.active && epoch <= p.EpochsPerIter:
			return p.SR.SendCont(start, func() any {
				return offerMsg{newCID: s.newCID, newLayer: s.newLayer, newSeed: s.newSeed}
			}, k)
		case !s.joined && s.captured == nil && epoch <= p.EpochsPerIter:
			return p.SR.ReceiveCont(start, func(m any, ok bool) {
				if ok {
					if om, isOffer := m.(offerMsg); isOffer {
						s.captured = &om
					}
				}
			}, k)
		default:
			return p.SR.SkipCont(start, k)
		}
	})
}

// gatherPhaseCont: captured offers are relayed up the old cluster to its
// root, which records the first one as the pending join decision.
func (s *devState) gatherPhaseCont(start uint64, k radio.Cont) radio.Cont {
	var relay *gatherMsg
	return radio.Do(func() {
		relay = nil
		if s.captured != nil && !s.joined {
			relay = &gatherMsg{oldCID: s.oldCID, capturer: s.idx, offer: *s.captured}
		}
	}, s.sweepCont(start, -1,
		func(int) (any, uint64, bool) {
			if relay != nil {
				return *relay, s.oldSeed, true
			}
			return nil, 0, false
		},
		func(_ int, m any) bool {
			gm, ok := m.(gatherMsg)
			if !ok || gm.oldCID != s.oldCID || s.joined {
				return false
			}
			relay = &gm
			return true
		},
		radio.Do(func() {
			// The root records the decision; a captured offer at the root
			// itself also counts.
			if s.oldCID == s.idx && !s.joined && s.pendingJoin == nil && relay != nil {
				s.pendingJoin = relay
			}
			s.captured = nil
		}, k)))
}

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
	Labels  labeling.Labeling
}

// AllInformed reports whether every device holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Broadcast runs the Theorem 16 algorithm on g from source.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("dtime: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		pop[v].Proc = Proc(p, v == source, msg, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: p.SR.Model, Seed: seed, MaxSlots: 1 << 62, Sims: p.Sims}, pop)
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Label
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}
