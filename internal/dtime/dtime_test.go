package dtime

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// testParams returns a lean-but-honest parameterization for small graphs
// (full w.h.p. constants make tiny-n wall times pointless; these keep the
// algorithm identical and the failure probability small at test scale).
func testParams(t *testing.T, g *graph.Graph, eps float64) Params {
	t.Helper()
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(radio.CD, g.N(), g.MaxDegree(), d, eps)
	if err != nil {
		t.Fatal(err)
	}
	return p.Tune(g.N(), 10, 6, 10, 0)
}

func TestBroadcastLowDiameterGraphs(t *testing.T) {
	gs := []*graph.Graph{
		graph.Star(16),
		graph.GNP(20, 0.3, 1),
		graph.Grid(4, 4),
		graph.Clique(10),
	}
	for _, g := range gs {
		p := testParams(t, g, 0.5)
		ok := false
		var lastErr error
		for seed := uint64(0); seed < 3 && !ok; seed++ {
			out, err := Broadcast(g, 0, "dmsg", p, seed)
			if err != nil {
				lastErr = err
				continue
			}
			if out.AllInformed() {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: no seed produced a complete broadcast (last err: %v)", g.Name(), lastErr)
		}
	}
}

func TestBroadcastModerateDiameter(t *testing.T) {
	g := graph.Grid(3, 8)
	p := testParams(t, g, 0.5)
	ok := false
	for seed := uint64(0); seed < 3 && !ok; seed++ {
		out, err := Broadcast(g, g.N()-1, 7, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.AllInformed() {
			ok = true
		}
	}
	if !ok {
		t.Error("grid broadcast never completed")
	}
}

func TestFinalLabelingGood(t *testing.T) {
	g := graph.GNP(18, 0.3, 4)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Labels.Validate(g); err != nil {
		t.Errorf("final labeling invalid: %v", err)
	}
}

func TestIterationsShrinkClusters(t *testing.T) {
	// After the partition iterations, the number of clusters must be
	// well below n (the whole point of contracting the cluster graph).
	g := graph.Grid(4, 5)
	p := testParams(t, g, 0.5).Tune(g.N(), 10, 6, 10, 1)
	out, err := Broadcast(g, 0, "x", p, 2)
	if err != nil {
		t.Fatal(err)
	}
	clusters := make(map[int]bool)
	for _, d := range out.Devices {
		clusters[d.Cluster] = true
	}
	if len(clusters) >= g.N() {
		t.Errorf("%d clusters out of %d vertices: no contraction", len(clusters), g.N())
	}
}

func TestEnergyPolylog(t *testing.T) {
	// Energy must stay far below the slot count (devices sleep through
	// nearly the whole schedule).
	g := graph.GNP(20, 0.3, 3)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := uint64(out.Result.MaxEnergy()); e*10 > out.Result.Slots {
		t.Errorf("max energy %d vs %d slots: devices barely sleep", e, out.Result.Slots)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParamsBeta(radio.CD, 16, 3, 4, 0.5); err == nil {
		t.Error("beta > 1/4 accepted")
	}
	if _, err := NewParamsBeta(radio.CD, 16, 3, 4, 0); err == nil {
		t.Error("beta = 0 accepted")
	}
	if _, err := NewParams(radio.CD, 0, 3, 4, 0.5); err == nil {
		t.Error("n = 0 accepted")
	}
	p, err := NewParams(radio.CD, 32, 4, 31, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations < 1 {
		t.Errorf("no iterations for D=31: %+v", p)
	}
	if p.LayerBound() < 1 || p.LayerBound() > 32 {
		t.Errorf("layer bound %d outside [1, n]", p.LayerBound())
	}
}

func TestSlotsAccountingConsistent(t *testing.T) {
	g := graph.Star(12)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Slots > p.Slots() {
		t.Errorf("used slot %d beyond schedule %d", out.Result.Slots, p.Slots())
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.Star(8)
	p := testParams(t, g, 0.5)
	if _, err := Broadcast(g, -1, nil, p, 0); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Broadcast(g, 99, nil, p, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := graph.Star(10)
	p := testParams(t, g, 0.5)
	a, err := Broadcast(g, 0, "d", p, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, 0, "d", p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Slots != b.Result.Slots || a.Result.Events != b.Result.Events {
		t.Error("same seed diverged")
	}
}

func TestNoCDVariantSmall(t *testing.T) {
	// The paper presents Section 6 in No-CD; verify a small instance
	// end-to-end in that model too.
	g := graph.Star(8)
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParams(radio.NoCD, g.N(), g.MaxDegree(), d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p = p.Tune(g.N(), 8, 4, 6, 0)
	ok := false
	for seed := uint64(0); seed < 3 && !ok; seed++ {
		out, err := Broadcast(g, 0, "nocd", p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.AllInformed() {
			ok = true
		}
	}
	if !ok {
		t.Error("No-CD dtime broadcast never completed")
	}
}
