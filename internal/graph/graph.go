// Package graph provides the undirected-graph type used as the radio
// network topology, together with generators for every topology family in
// the paper's analysis (paths, cliques, stars, K_{2,k}, grids, random
// graphs, random trees, bounded-degree graphs) and the structural metrics
// the model parameters are drawn from (maximum degree Delta, diameter D).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1 with adjacency
// lists. The zero value is an empty graph; use New to allocate vertices.
type Graph struct {
	adj  [][]int
	m    int
	name string
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Name returns the generator-assigned human-readable topology name,
// if any ("path-16", "gnp-64-0.10", ...).
func (g *Graph) Name() string { return g.name }

// SetName records a human-readable topology name.
func (g *Graph) SetName(name string) { g.name = name }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with an error (the radio model assumes a simple
// graph).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.N())
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
	return nil
}

// mustAddEdge is used by generators whose construction cannot produce
// invalid edges.
func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	// Scan the shorter list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of v. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Delta, the maximum vertex degree (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, nb := range g.adj {
		if len(nb) > d {
			d = len(nb)
		}
	}
	return d
}

// SortAdjacency sorts every adjacency list ascending, making iteration
// order (and thus seeded simulations) independent of construction order.
func (g *Graph) SortAdjacency() {
	for _, nb := range g.adj {
		sort.Ints(nb)
	}
}

// BFS returns dist where dist[v] is the hop distance from src, or -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from v, or an error if the
// graph is disconnected from v.
func (g *Graph) Eccentricity(v int) (int, error) {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d == -1 {
			return 0, errors.New("graph: disconnected")
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Diameter returns the exact diameter D = max_{u,v} dist(u,v) by running a
// BFS from every vertex. It errors on disconnected graphs. Intended for
// the n <= a-few-thousand graphs used in experiments.
func (g *Graph) Diameter() (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, err := g.Eccentricity(v)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// TwoHopNeighbors returns the set N2(v): vertices at distance exactly 1 or
// 2 from v, excluding v itself, in ascending order.
func (g *Graph) TwoHopNeighbors(v int) []int {
	seen := make(map[int]bool)
	for _, u := range g.adj[v] {
		seen[u] = true
		for _, w := range g.adj[u] {
			if w != v {
				seen[w] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.m = g.m
	c.name = g.name
	for v, nb := range g.adj {
		c.adj[v] = append([]int(nil), nb...)
	}
	return c
}

// Validate checks structural invariants (symmetry, no self-loops, no
// duplicates); generators call it in tests.
func (g *Graph) Validate() error {
	count := 0
	for v, nb := range g.adj {
		seen := make(map[int]bool, len(nb))
		for _, w := range nb {
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if w < 0 || w >= g.N() {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if seen[w] {
				return fmt.Errorf("graph: duplicate edge {%d,%d}", v, w)
			}
			seen[w] = true
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", v, w)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count mismatch: m=%d but %d half-edges", g.m, count)
	}
	return nil
}
