// Package graph provides the undirected-graph type used as the radio
// network topology, together with generators for every topology family in
// the paper's analysis (paths, cliques, stars, K_{2,k}, grids, random
// graphs, random trees, bounded-degree graphs) and the structural metrics
// the model parameters are drawn from (maximum degree Delta, diameter D).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Graph is a simple undirected graph on vertices 0..N-1 with adjacency
// lists. The zero value is an empty graph; use New to allocate vertices.
//
// Invariant: every adjacency list is sorted ascending at all times.
// AddEdge inserts in sorted position (O(1) amortized for the generators,
// which emit edges in ascending order), so Neighbors never needs a sort
// and seeded simulations are independent of construction order. Consumers
// such as the radio engine's collision resolution rely on this.
type Graph struct {
	adj  [][]int
	m    int
	name string

	// csrMu guards the lazily built CSR mirror below. Construction
	// (AddEdge) is single-threaded by contract; CSR may be called
	// concurrently once the graph is built.
	csrMu  sync.Mutex
	csrOff []int32
	csrAdj []int32
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Name returns the generator-assigned human-readable topology name,
// if any ("path-16", "gnp-64-0.10", ...).
func (g *Graph) Name() string { return g.name }

// SetName records a human-readable topology name.
func (g *Graph) SetName(name string) { g.name = name }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with an error (the radio model assumes a simple
// graph). Each endpoint is inserted in sorted position, preserving the
// sorted-adjacency invariant; generators emit edges in ascending order,
// so the common case is a plain append.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.N())
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	g.csrOff, g.csrAdj = nil, nil // invalidate the CSR mirror
	return nil
}

// insertSorted inserts x into the sorted slice s, keeping it sorted.
func insertSorted(s []int, x int) []int {
	if n := len(s); n == 0 || s[n-1] < x {
		return append(s, x) // generators append in ascending order
	}
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// mustAddEdge is used by generators whose construction cannot produce
// invalid edges.
func (g *Graph) mustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	// Binary-search the shorter (sorted) list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	s := g.adj[a]
	i := sort.SearchInts(s, b)
	return i < len(s) && s[i] == b
}

// Neighbors returns the adjacency list of v, sorted ascending. The
// returned slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Delta, the maximum vertex degree (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, nb := range g.adj {
		if len(nb) > d {
			d = len(nb)
		}
	}
	return d
}

// SortAdjacency sorts every adjacency list ascending. Since AddEdge now
// maintains sortedness as an invariant it is a no-op for graphs built
// through the public API; it is kept as a repair valve for callers that
// reach into a graph by other means.
func (g *Graph) SortAdjacency() {
	for _, nb := range g.adj {
		sort.Ints(nb)
	}
}

// CSR returns the graph's adjacency in compressed-sparse-row form: the
// neighbors of v are adj[off[v]:off[v+1]], sorted ascending. The two
// slices are built lazily on first call, cached, and shared by every
// caller — they must not be modified. The flat layout is what the radio
// engine's hot collision-resolution loop iterates: one contiguous block
// per vertex instead of n separately allocated lists.
//
// CSR is safe for concurrent use once construction is finished; it must
// not race with AddEdge (which invalidates the cache).
func (g *Graph) CSR() (off, adj []int32) {
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if g.csrOff == nil {
		n := g.N()
		g.csrOff = make([]int32, n+1)
		g.csrAdj = make([]int32, 0, 2*g.m)
		for v := 0; v < n; v++ {
			g.csrOff[v] = int32(len(g.csrAdj))
			for _, w := range g.adj[v] {
				g.csrAdj = append(g.csrAdj, int32(w))
			}
		}
		g.csrOff[n] = int32(len(g.csrAdj))
	}
	return g.csrOff, g.csrAdj
}

// BFS returns dist where dist[v] is the hop distance from src, or -1 for
// unreachable vertices.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from v, or an error if the
// graph is disconnected from v.
func (g *Graph) Eccentricity(v int) (int, error) {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d == -1 {
			return 0, errors.New("graph: disconnected")
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Diameter returns the exact diameter D = max_{u,v} dist(u,v) by running a
// BFS from every vertex. It errors on disconnected graphs. Intended for
// the n <= a-few-thousand graphs used in experiments.
func (g *Graph) Diameter() (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, err := g.Eccentricity(v)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// TwoHopNeighbors returns the set N2(v): vertices at distance exactly 1 or
// 2 from v, excluding v itself, in ascending order.
func (g *Graph) TwoHopNeighbors(v int) []int {
	seen := make(map[int]bool)
	for _, u := range g.adj[v] {
		seen[u] = true
		for _, w := range g.adj[u] {
			if w != v {
				seen[w] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.m = g.m
	c.name = g.name
	for v, nb := range g.adj {
		c.adj[v] = append([]int(nil), nb...)
	}
	return c
}

// Validate checks structural invariants (symmetry, no self-loops, no
// duplicates); generators call it in tests.
func (g *Graph) Validate() error {
	count := 0
	for v, nb := range g.adj {
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				return fmt.Errorf("graph: adjacency of %d not sorted at %v", v, nb)
			}
		}
		seen := make(map[int]bool, len(nb))
		for _, w := range nb {
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if w < 0 || w >= g.N() {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if seen[w] {
				return fmt.Errorf("graph: duplicate edge {%d,%d}", v, w)
			}
			seen[w] = true
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", v, w)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count mismatch: m=%d but %d half-edges", g.m, count)
	}
	return nil
}
