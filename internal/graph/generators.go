package graph

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/rng"
)

// Path returns the path graph v0 - v1 - ... - v(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.mustAddEdge(i, i+1)
	}
	g.name = fmt.Sprintf("path-%d", n)
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices (a path for n < 3).
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.mustAddEdge(n-1, 0)
	}
	g.name = fmt.Sprintf("cycle-%d", n)
	return g
}

// Clique returns the complete graph K_n, the single-hop network used for
// leader-election substrates.
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.mustAddEdge(i, j)
		}
	}
	g.name = fmt.Sprintf("clique-%d", n)
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.mustAddEdge(0, i)
	}
	g.name = fmt.Sprintf("star-%d", n)
	return g
}

// K2k returns the complete bipartite graph K_{2,k} used by the Theorem 2
// lower-bound reduction: vertex 0 is the source s, vertex 1 is t, and
// vertices 2..k+1 are the middle layer {v_1..v_k} adjacent to both.
// s and t are NOT adjacent.
func K2k(k int) *Graph {
	g := New(k + 2)
	for i := 0; i < k; i++ {
		g.mustAddEdge(0, 2+i)
		g.mustAddEdge(1, 2+i)
	}
	g.name = fmt.Sprintf("k2k-%d", k)
	return g
}

// Grid returns the rows x cols grid graph (diameter rows+cols-2, Delta=4).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.mustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.mustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.name = fmt.Sprintf("grid-%dx%d", rows, cols)
	return g
}

// Hypercube returns the d-dimensional hypercube (n = 2^d, Delta = d,
// diameter d).
func Hypercube(d int) *Graph {
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				g.mustAddEdge(v, w)
			}
		}
	}
	g.name = fmt.Sprintf("hypercube-%d", d)
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random Prüfer-like attachment: vertex i (i >= 1) attaches to a uniform
// random earlier vertex. (Random recursive tree; diameter Theta(log n).)
func RandomTree(n int, seed uint64) *Graph {
	g := New(n)
	r := rng.New(seed)
	for i := 1; i < n; i++ {
		g.mustAddEdge(i, r.IntN(i))
	}
	g.name = fmt.Sprintf("rtree-%d", n)
	return g
}

// GNP returns an Erdős–Rényi G(n,p) graph conditioned on connectivity: it
// retries with fresh randomness (derived from seed) until the sample is
// connected, and as a safety net links consecutive isolated components
// after 64 failed attempts.
func GNP(n int, p float64, seed uint64) *Graph {
	for attempt := uint64(0); attempt < 64; attempt++ {
		g := New(n)
		r := rng.NewChild(seed, attempt)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Bernoulli(r, p) {
					g.mustAddEdge(i, j)
				}
			}
		}
		if g.IsConnected() {
			g.name = fmt.Sprintf("gnp-%d-%.2f", n, p)
			return g
		}
	}
	// Deterministic fallback: sample once more and stitch components along
	// a path so experiments never fail on an unlucky seed.
	g := New(n)
	r := rng.NewChild(seed, 64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Bernoulli(r, p) {
				g.mustAddEdge(i, j)
			}
		}
	}
	comp := components(g)
	for i := 0; i+1 < len(comp); i++ {
		g.mustAddEdge(comp[i][0], comp[i+1][0])
	}
	g.name = fmt.Sprintf("gnp-%d-%.2f", n, p)
	return g
}

// RandomGeometric returns a random geometric (unit-disk) graph: n points
// sampled uniformly in the unit square, with an edge between every pair
// at Euclidean distance <= r — the standard sensor-network model, whose
// local density/long-path mix exercises both cost sources the paper
// identifies. r <= 0 selects 1.5x the connectivity threshold
// sqrt(ln n / (pi n)).
//
// Like GNP, the sample is conditioned on connectivity: up to 64 fresh
// attempts (randomness derived from seed), then a geometric fixup that
// links each remaining component to the rest through its closest pair of
// points, so experiments never fail on an unlucky seed.
func RandomGeometric(n int, r float64, seed uint64) *Graph {
	if r <= 0 {
		r = 1.5 * math.Sqrt(math.Log(math.Max(float64(n), 2))/(math.Pi*float64(n)))
	}
	var g *Graph
	var pts [][2]float64
	for attempt := uint64(0); attempt <= 64; attempt++ {
		g, pts = sampleGeometric(n, r, rng.NewChild(seed, attempt))
		if g.IsConnected() || attempt == 64 {
			break
		}
	}
	if !g.IsConnected() {
		// Fixup: bridge each component to the rest at its closest pair.
		comp := components(g)
		for len(comp) > 1 {
			bu, bv, best := -1, -1, math.Inf(1)
			for _, u := range comp[0] {
				for _, c := range comp[1:] {
					for _, v := range c {
						if d := dist2(pts[u], pts[v]); d < best {
							bu, bv, best = u, v, d
						}
					}
				}
			}
			g.mustAddEdge(bu, bv)
			comp = components(g)
		}
	}
	g.name = fmt.Sprintf("rgg-%d-%.2f", n, r)
	return g
}

// sampleGeometric draws one unit-disk sample.
func sampleGeometric(n int, r float64, rand *rand.Rand) (*Graph, [][2]float64) {
	g := New(n)
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rand.Float64(), rand.Float64()}
	}
	rr := r * r
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dist2(pts[i], pts[j]) <= rr {
				g.mustAddEdge(i, j)
			}
		}
	}
	return g, pts
}

func dist2(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return dx*dx + dy*dy
}

// RandomBoundedDegree returns a connected random graph with maximum degree
// at most maxDeg >= 2: a Hamiltonian path (guaranteeing connectivity and
// degree >= 1) plus random chords that respect the degree bound.
func RandomBoundedDegree(n, maxDeg int, seed uint64) *Graph {
	if maxDeg < 2 {
		maxDeg = 2
	}
	g := Path(n)
	r := rng.New(seed)
	// Try to add about n/2 random chords.
	for t := 0; t < n/2; t++ {
		u, v := r.IntN(n), r.IntN(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if g.Degree(u) >= maxDeg || g.Degree(v) >= maxDeg {
			continue
		}
		g.mustAddEdge(u, v)
	}
	g.name = fmt.Sprintf("bdeg-%d-%d", n, maxDeg)
	return g
}

// Caterpillar returns a spine path of length spine with legs pendant
// vertices attached to each spine vertex — a high-degree, high-diameter
// topology exercising both cost sources the paper identifies
// (synchronization along the spine, contention at the legs).
func Caterpillar(spine, legs int) *Graph {
	n := spine * (1 + legs)
	g := New(n)
	for i := 0; i+1 < spine; i++ {
		g.mustAddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.mustAddEdge(i, next)
			next++
		}
	}
	g.name = fmt.Sprintf("caterpillar-%dx%d", spine, legs)
	return g
}

// Lollipop returns a clique of size k with a path of length tail attached —
// the classic topology mixing a dense contention region with a long
// synchronization region.
func Lollipop(k, tail int) *Graph {
	g := New(k + tail)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.mustAddEdge(i, j)
		}
	}
	prev := 0
	for i := 0; i < tail; i++ {
		g.mustAddEdge(prev, k+i)
		prev = k + i
	}
	g.name = fmt.Sprintf("lollipop-%d-%d", k, tail)
	return g
}

// components returns the connected components as vertex lists.
func components(g *Graph) [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for v := 0; v < g.N(); v++ {
		if seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, w := range g.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
