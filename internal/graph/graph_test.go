package graph

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("New(5): N=%d M=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("empty graph MaxDegree = %d", g.MaxDegree())
	}
	if New(-3).N() != 0 {
		t.Fatal("New(-3) should have 0 vertices")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("reversed duplicate edge accepted")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d after one valid edge", g.M())
	}
}

func TestHasEdgeAndDegree(t *testing.T) {
	g := Star(5)
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) {
		t.Fatal("star missing center edge")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("star has leaf-leaf edge")
	}
	if g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Fatal("HasEdge out of range should be false")
	}
	if g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Fatalf("star degrees: %d, %d", g.Degree(0), g.Degree(1))
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("star MaxDegree = %d", g.MaxDegree())
	}
}

func TestBFSAndDiameterPath(t *testing.T) {
	g := Path(10)
	dist := g.BFS(0)
	for i := 0; i < 10; i++ {
		if dist[i] != i {
			t.Fatalf("path BFS dist[%d] = %d", i, dist[i])
		}
	}
	d, err := g.Diameter()
	if err != nil || d != 9 {
		t.Fatalf("path-10 diameter = %d, %v", d, err)
	}
}

func TestDiameterKnownValues(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Clique(6), 1},
		{Star(8), 2},
		{K2k(5), 2},
		{Grid(4, 6), 8},
		{Hypercube(4), 4},
		{Cycle(8), 4},
		{Cycle(9), 4},
	}
	for _, c := range cases {
		d, err := c.g.Diameter()
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name(), err)
		}
		if d != c.want {
			t.Errorf("%s diameter = %d, want %d", c.g.Name(), d, c.want)
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if _, err := g.Diameter(); err == nil {
		t.Fatal("Diameter on disconnected graph should error")
	}
	if _, err := g.Eccentricity(0); err == nil {
		t.Fatal("Eccentricity on disconnected graph should error")
	}
}

func TestK2kStructure(t *testing.T) {
	for _, k := range []int{1, 2, 7} {
		g := K2k(k)
		if g.N() != k+2 {
			t.Fatalf("K2k(%d): N = %d", k, g.N())
		}
		if g.HasEdge(0, 1) {
			t.Fatal("K2k: s and t must not be adjacent")
		}
		if g.Degree(0) != k || g.Degree(1) != k {
			t.Fatalf("K2k(%d): deg(s)=%d deg(t)=%d", k, g.Degree(0), g.Degree(1))
		}
		for i := 2; i < g.N(); i++ {
			if g.Degree(i) != 2 {
				t.Fatalf("K2k middle vertex degree %d", g.Degree(i))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTwoHopNeighbors(t *testing.T) {
	g := Path(6)
	n2 := g.TwoHopNeighbors(2)
	want := []int{0, 1, 3, 4}
	if len(n2) != len(want) {
		t.Fatalf("TwoHopNeighbors(2) = %v", n2)
	}
	for i := range want {
		if n2[i] != want[i] {
			t.Fatalf("TwoHopNeighbors(2) = %v, want %v", n2, want)
		}
	}
	// Endpoint.
	n2 = g.TwoHopNeighbors(0)
	if len(n2) != 2 || n2[0] != 1 || n2[1] != 2 {
		t.Fatalf("TwoHopNeighbors(0) = %v", n2)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	if err := c.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Fatal("Clone shares adjacency with original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M=%d orig M=%d", c.M(), g.M())
	}
	if c.Name() != g.Name() {
		t.Fatal("clone lost name")
	}
}

func TestGeneratorsValidateAndConnect(t *testing.T) {
	gs := []*Graph{
		Path(1), Path(17), Cycle(3), Cycle(12), Clique(9), Star(11),
		K2k(4), Grid(3, 7), Hypercube(5), RandomTree(40, 1),
		GNP(40, 0.15, 2), RandomBoundedDegree(50, 4, 3),
		Caterpillar(8, 3), Lollipop(6, 10),
	}
	for _, g := range gs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if !g.IsConnected() {
			t.Errorf("%s: not connected", g.Name())
		}
	}
}

func TestRandomBoundedDegreeRespectsBound(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := RandomBoundedDegree(64, 4, seed)
		if g.MaxDegree() > 4 {
			t.Fatalf("seed %d: MaxDegree %d > 4", seed, g.MaxDegree())
		}
	}
	// maxDeg < 2 is clamped to 2 and still yields a connected path.
	g := RandomBoundedDegree(10, 1, 0)
	if !g.IsConnected() || g.MaxDegree() > 2 {
		t.Fatal("RandomBoundedDegree(10,1) invalid")
	}
}

func TestGNPDeterministicPerSeed(t *testing.T) {
	a := GNP(30, 0.2, 7)
	b := GNP(30, 0.2, 7)
	if a.M() != b.M() {
		t.Fatalf("GNP not deterministic: %d vs %d edges", a.M(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("GNP adjacency differs at %d", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("GNP adjacency differs at %d", v)
			}
		}
	}
}

func TestGNPSparseFallbackConnects(t *testing.T) {
	// p = 0 can never be connected by sampling; the fallback must stitch.
	g := GNP(12, 0, 5)
	if !g.IsConnected() {
		t.Fatal("GNP fallback did not produce a connected graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillarShape(t *testing.T) {
	g := Caterpillar(5, 2)
	if g.N() != 15 {
		t.Fatalf("caterpillar N = %d", g.N())
	}
	// Interior spine vertices: 2 spine neighbors + 2 legs.
	if g.Degree(2) != 4 {
		t.Fatalf("caterpillar interior spine degree = %d", g.Degree(2))
	}
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 { // leg - spine(0..4) - leg
		t.Fatalf("caterpillar diameter = %d", d)
	}
}

func TestLollipopShape(t *testing.T) {
	g := Lollipop(4, 6)
	if g.N() != 10 {
		t.Fatalf("lollipop N = %d", g.N())
	}
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 { // across clique (1) + tail (6)
		t.Fatalf("lollipop diameter = %d", d)
	}
}

func TestSortAdjacency(t *testing.T) {
	g := New(4)
	for _, e := range [][2]int{{3, 0}, {2, 0}, {1, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g.SortAdjacency()
	nb := g.Neighbors(0)
	for i := 0; i+1 < len(nb); i++ {
		if nb[i] > nb[i+1] {
			t.Fatalf("adjacency not sorted: %v", nb)
		}
	}
}

// assertSorted fails unless every adjacency list of g is strictly
// ascending — the constructor invariant the radio engine's collision
// resolution depends on (it dropped its per-listener sort).
func assertSorted(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("%s: Neighbors(%d) not sorted: %v", g.Name(), v, nb)
			}
		}
	}
}

// TestNeighborsSortedInvariant guards the sorted-adjacency invariant on
// every generator, including the ones whose construction order is not
// ascending (cycle's wrap-around edge, bounded-degree's random chords)
// and the out-of-order AddEdge path itself.
func TestNeighborsSortedInvariant(t *testing.T) {
	gs := []*Graph{
		Path(17), Cycle(12), Star(9), Clique(7), K2k(5),
		Grid(4, 5), Hypercube(4), RandomTree(33, 3),
		GNP(40, 0.15, 9), RandomGeometric(30, 0, 5),
		RandomBoundedDegree(25, 4, 11), Caterpillar(6, 3), Lollipop(5, 6),
	}
	for _, g := range gs {
		assertSorted(t, g)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
	// Edges inserted in descending/interleaved order through AddEdge.
	g := New(6)
	for _, e := range [][2]int{{5, 0}, {3, 0}, {4, 0}, {1, 0}, {2, 5}, {2, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	assertSorted(t, g)
	if got := g.Neighbors(0); len(got) != 4 || got[0] != 1 || got[1] != 3 || got[2] != 4 || got[3] != 5 {
		t.Fatalf("Neighbors(0) = %v, want [1 3 4 5]", got)
	}
}

// TestCSR checks the compressed-sparse-row mirror against Neighbors and
// its cache invalidation on mutation.
func TestCSR(t *testing.T) {
	g := Grid(3, 4)
	off, adj := g.CSR()
	if len(off) != g.N()+1 || int(off[g.N()]) != 2*g.M() {
		t.Fatalf("CSR shape: len(off)=%d, off[n]=%d, want %d half-edges", len(off), off[g.N()], 2*g.M())
	}
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		row := adj[off[v]:off[v+1]]
		if len(row) != len(nb) {
			t.Fatalf("CSR row %d has %d entries, want %d", v, len(row), len(nb))
		}
		for i, w := range nb {
			if int(row[i]) != w {
				t.Fatalf("CSR row %d = %v, want %v", v, row, nb)
			}
		}
	}
	// Cached: same backing arrays on a second call.
	off2, adj2 := g.CSR()
	if &off2[0] != &off[0] || &adj2[0] != &adj[0] {
		t.Fatal("CSR not cached across calls")
	}
	// Invalidated by mutation.
	if err := g.AddEdge(0, 11); err != nil {
		t.Fatal(err)
	}
	off3, _ := g.CSR()
	if int(off3[g.N()]) != 2*g.M() {
		t.Fatalf("CSR stale after AddEdge: off[n]=%d, want %d", off3[g.N()], 2*g.M())
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(3)
	g.adj[0] = append(g.adj[0], 1) // corrupt: half-edge only
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric edge")
	}
}

func TestGraphPropertyHandshake(t *testing.T) {
	// Property: sum of degrees = 2M for random graphs.
	f := func(rawN uint8, rawSeed uint16) bool {
		n := int(rawN)%40 + 2
		g := GNP(n, 0.3, uint64(rawSeed))
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBFSOutOfRangeSource(t *testing.T) {
	g := Path(3)
	dist := g.BFS(-1)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("BFS(-1) should mark everything unreachable")
		}
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(40, 0.3, 7)
	if g.N() != 40 || !g.IsConnected() {
		t.Fatalf("rgg: n=%d connected=%v", g.N(), g.IsConnected())
	}
	if g.Name() != "rgg-40-0.30" {
		t.Errorf("name = %q", g.Name())
	}
	// Deterministic in the seed.
	h := RandomGeometric(40, 0.3, 7)
	if g.M() != h.M() {
		t.Errorf("same seed, different edge counts: %d vs %d", g.M(), h.M())
	}
	if RandomGeometric(40, 0.3, 8).M() == g.M() && RandomGeometric(40, 0.3, 9).M() == g.M() {
		t.Error("different seeds produced identical edge counts thrice; generator ignores seed?")
	}
	// A tiny radius forces the connectivity fixup.
	sparse := RandomGeometric(30, 0.01, 3)
	if !sparse.IsConnected() {
		t.Error("fixup failed to connect a sub-threshold sample")
	}
	if sparse.M() < 29 {
		t.Errorf("connected graph needs >= n-1 edges, got %d", sparse.M())
	}
	// Default radius (r <= 0) sits above the connectivity threshold.
	if def := RandomGeometric(50, 0, 11); !def.IsConnected() {
		t.Error("default radius sample disconnected")
	}
}
